// Stress and edge-case tests of the cluster runtime: ordering guarantees
// under load, large payloads, wide clusters, degenerate sizes, and the
// cost model's arithmetic at the boundaries.
#include <gtest/gtest.h>

#include <numeric>

#include "base/rng.h"
#include "net/cluster.h"
#include "pdm/typed_io.h"
#include "test_params.h"

namespace paladin::net {
namespace {

TEST(NetStress, FifoHoldsUnderThousandsOfMessages) {
  Cluster cluster(ClusterConfig::homogeneous(2));
  auto out = cluster.run([](NodeContext& ctx) -> u64 {
    constexpr u64 kCount = 5000;
    if (ctx.rank() == 0) {
      for (u64 i = 0; i < kCount; ++i) {
        ctx.comm().send_value<u64>(1, 3, i);
      }
      return 0;
    }
    u64 violations = 0;
    for (u64 i = 0; i < kCount; ++i) {
      if (ctx.comm().recv_value<u64>(0, 3) != i) ++violations;
    }
    return violations;
  });
  EXPECT_EQ(out.results[1], 0u);
}

TEST(NetStress, InterleavedTagsKeepPerTagOrder) {
  Cluster cluster(ClusterConfig::homogeneous(2));
  auto out = cluster.run([](NodeContext& ctx) -> u64 {
    constexpr u64 kCount = 500;
    if (ctx.rank() == 0) {
      for (u64 i = 0; i < kCount; ++i) {
        ctx.comm().send_value<u64>(1, static_cast<int>(i % 3), i);
      }
      return 0;
    }
    // Drain tag by tag: within each tag the values must ascend.
    u64 violations = 0;
    for (int tag = 0; tag < 3; ++tag) {
      u64 prev = 0;
      bool first = true;
      for (u64 i = 0; i < kCount / 3 + (tag < static_cast<int>(kCount % 3));
           ++i) {
        const u64 v = ctx.comm().recv_value<u64>(0, tag);
        if (!first && v <= prev) ++violations;
        prev = v;
        first = false;
      }
    }
    return violations;
  });
  EXPECT_EQ(out.results[1], 0u);
}

TEST(NetStress, MegabytePayloadRoundTrips) {
  Cluster cluster(ClusterConfig::homogeneous(2));
  auto out = cluster.run([](NodeContext& ctx) -> bool {
    std::vector<u64> big(1 << 17);  // 1 MiB
    if (ctx.rank() == 0) {
      Xoshiro256 rng(5);
      for (auto& x : big) x = rng.next();
      ctx.comm().send_records<u64>(1, 1, big);
      // Echo check.
      const auto echo = ctx.comm().recv_records<u64>(1, 2);
      return echo == big;
    }
    auto data = ctx.comm().recv_records<u64>(0, 1);
    ctx.comm().send_records<u64>(0, 2, data);
    return true;
  });
  EXPECT_TRUE(out.results[0]);
}

TEST(NetStress, ZeroLengthMessagesDeliver) {
  Cluster cluster(ClusterConfig::homogeneous(2));
  auto out = cluster.run([](NodeContext& ctx) -> bool {
    if (ctx.rank() == 0) {
      ctx.comm().send_records<u32>(1, 9, std::span<const u32>());
      return true;
    }
    return ctx.comm().recv_records<u32>(0, 9).empty();
  });
  EXPECT_TRUE(out.results[1]);
}

TEST(NetStress, SixteenNodeCollectives) {
  Cluster cluster(ClusterConfig::homogeneous(16));
  auto out = cluster.run([](NodeContext& ctx) -> bool {
    auto& comm = ctx.comm();
    const u64 sum = comm.allreduce_sum(ctx.rank() + 1ull);
    if (sum != 136) return false;  // 1+2+...+16

    std::vector<u32> mine = {ctx.rank()};
    const auto all = comm.gather_records<u32>(std::span<const u32>(mine), 5);
    if (ctx.rank() == 5) {
      for (u32 i = 0; i < 16; ++i) {
        if (all[i] != i) return false;
      }
    }
    const u32 token = comm.bcast_value<u32>(
        ctx.rank() == 5 ? 777u : 0u, 5);
    if (token != 777) return false;
    comm.barrier();
    return true;
  });
  for (bool ok : out.results) EXPECT_TRUE(ok);
}

TEST(NetStress, SingleNodeClusterDegenerates) {
  Cluster cluster(ClusterConfig::homogeneous(1));
  auto out = cluster.run([](NodeContext& ctx) -> bool {
    auto& comm = ctx.comm();
    comm.barrier();
    if (comm.allreduce_sum(7) != 7) return false;
    if (comm.allreduce_max(3.5) != 3.5) return false;
    std::vector<u32> mine = {1, 2};
    if (comm.gather_records<u32>(std::span<const u32>(mine), 0) != mine) {
      return false;
    }
    auto in = comm.alltoall_records<u32>({{9u}});
    return in.size() == 1 && in[0] == std::vector<u32>{9u};
  });
  EXPECT_TRUE(out.results[0]);
}

TEST(NetStress, ClocksNeverGoBackwards) {
  // Sample the clock around every operation of a busy exchange.
  Cluster cluster(ClusterConfig::homogeneous(4));
  auto out = cluster.run([](NodeContext& ctx) -> bool {
    auto& comm = ctx.comm();
    double last = ctx.clock().now();
    auto check = [&]() {
      const double now = ctx.clock().now();
      const bool ok = now >= last;
      last = now;
      return ok;
    };
    bool ok = true;
    for (int round = 0; round < 20; ++round) {
      ctx.on_compares(100);
      ok = ok && check();
      std::vector<std::vector<u32>> outgoing(4);
      for (u32 j = 0; j < 4; ++j) outgoing[j].assign(10, ctx.rank());
      comm.alltoall_records<u32>(std::move(outgoing));
      ok = ok && check();
      comm.barrier();
      ok = ok && check();
    }
    return ok;
  });
  for (bool ok : out.results) EXPECT_TRUE(ok);
}

TEST(NetStress, PerMessageOverheadScalesSmallMessageCost) {
  // 1000 x 4-byte messages must cost ~1000x the per-message overhead,
  // while one 4000-byte message costs ~one overhead.
  ClusterConfig cfg = ClusterConfig::homogeneous(2);
  cfg.cost = CostModel::free_compute();
  auto run_with = [&](u64 messages, u64 per_message) {
    Cluster cluster(cfg);
    auto out = cluster.run([&](NodeContext& ctx) -> double {
      if (ctx.rank() == 0) {
        std::vector<u32> chunk(per_message, 7u);
        for (u64 i = 0; i < messages; ++i) {
          ctx.comm().send_records<u32>(1, 1, chunk);
        }
        return 0;
      }
      for (u64 i = 0; i < messages; ++i) {
        ctx.comm().recv_records<u32>(0, 1);
      }
      return ctx.clock().now();
    });
    return out.results[1];
  };
  const double many_small = run_with(1000, 1);
  const double one_big = run_with(1, 1000);
  EXPECT_GT(many_small, 100 * one_big);
}

TEST(NetStress, DiskCostIndependentOfSpeedWhenDisabled) {
  ClusterConfig cfg;
  cfg.perf = {1, 4};
  cfg.cost.scale_disk_with_speed = false;
  cfg.cost.per_compare_seconds = 0;
  cfg.cost.per_move_seconds = 0;
  Cluster cluster(cfg);
  auto out = cluster.run([](NodeContext& ctx) -> double {
    std::vector<u32> data(10000);
    pdm::write_file<u32>(ctx.disk(), "f", std::span<const u32>(data));
    return ctx.clock().now();
  });
  EXPECT_NEAR(out.results[0], out.results[1], 1e-12);
}

TEST(NetStress, RepeatedRunsOnOneClusterObjectAreIndependent) {
  Cluster cluster(ClusterConfig::homogeneous(3));
  for (int round = 0; round < 3; ++round) {
    auto out = cluster.run([](NodeContext& ctx) -> double {
      ctx.comm().barrier();
      return ctx.clock().now();
    });
    // Clocks start fresh each run (new NodeContexts).
    for (double t : out.results) EXPECT_LT(t, 1.0);
  }
}

// ---------------------------------------------------------------------
// Non-blocking mailbox primitives and credit-based flow control
// ---------------------------------------------------------------------

TEST(NetStress, MailboxTryReceiveAndDeliveryCounter) {
  Mailbox box;
  EXPECT_EQ(box.deliveries(), 0u);
  EXPECT_FALSE(box.try_receive(kAnySource, kAnyTag).has_value());

  Packet p;
  p.source = 3;
  p.tag = 7;
  p.payload = {1, 2, 3, 4};
  box.deliver(p);
  EXPECT_EQ(box.deliveries(), 1u);
  EXPECT_EQ(box.pending_bytes(), 4u);
  EXPECT_EQ(box.max_pending_bytes(), 4u);

  EXPECT_FALSE(box.try_receive(3, 8).has_value());  // wrong tag
  EXPECT_FALSE(box.try_receive(2, 7).has_value());  // wrong source
  auto got = box.try_receive(3, 7);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload.size(), 4u);
  EXPECT_EQ(box.pending_bytes(), 0u);
  EXPECT_EQ(box.max_pending_bytes(), 4u);  // high-water mark sticks
  box.wait_deliveries_beyond(0);           // 1 > 0: returns immediately

  box.poison();
  EXPECT_THROW(box.try_receive(kAnySource, kAnyTag), MailboxPoisoned);
  EXPECT_THROW(box.wait_deliveries_beyond(1), MailboxPoisoned);
}

TEST(NetStress, SlowReceiverInFlightBytesStayWithinCreditWindow) {
  // A manual credit-window exchange against a deliberately slow consumer:
  // the sender may have at most W un-acknowledged chunks in flight, so the
  // receiver's inbox can never hold more than W data chunks no matter how
  // far it lags.  (Before flow control, the eager sender would park all
  // kChunks·kBytes here at once.)
  constexpr u64 kChunks = test_params::kFlowChunks;
  constexpr u64 kBytes = test_params::kFlowChunkBytes;
  constexpr u64 kWindow = test_params::kFlowWindow;
  constexpr int kData = test_params::kFlowDataTag;
  constexpr int kAck = test_params::kFlowAckTag;

  Cluster cluster(ClusterConfig::homogeneous(2));
  auto out = cluster.run([&](NodeContext& ctx) -> u64 {
    if (ctx.rank() == 0) {
      std::vector<u8> chunk(kBytes, 0xab);
      for (u64 k = 0; k < kChunks; ++k) {
        if (k >= kWindow) {
          ctx.comm().recv_packet(1, kAck);  // credit for chunk k − W
        }
        ctx.comm().send_bytes(1, kData, std::span<const u8>(chunk));
      }
      return 0;
    }
    for (u64 k = 0; k < kChunks; ++k) {
      // Lag behind the sender: drain other work before touching the inbox.
      volatile int sink = 0;
      for (int spin = 0; spin < 20000; ++spin) sink = spin;
      (void)sink;
      Packet p = ctx.comm().recv_packet(0, kData);
      EXPECT_EQ(p.payload.size(), kBytes);
      const u8 token = 0;
      ctx.comm().send_bytes(0, kAck, std::span<const u8>(&token, 1));
    }
    return ctx.comm().inbox_peak_bytes();
  });
  EXPECT_LE(out.results[1], kWindow * kBytes);
  EXPECT_GT(out.results[1], 0u);
}

TEST(NetStress, BufferPoolRecyclesPayloadCapacity) {
  BufferPool pool;
  EXPECT_EQ(pool.pooled(), 0u);
  std::vector<u8> a = pool.acquire();
  a.assign(1000, 7);
  pool.release(std::move(a));
  EXPECT_EQ(pool.pooled(), 1u);
  std::vector<u8> b = pool.acquire();
  EXPECT_TRUE(b.empty());
  EXPECT_GE(b.capacity(), 1000u);  // capacity survived the round trip
  EXPECT_EQ(pool.pooled(), 0u);
  pool.release({});  // zero-capacity buffers are not pooled
  EXPECT_EQ(pool.pooled(), 0u);
}

}  // namespace
}  // namespace paladin::net
