// Tests of the base utilities: contracts, integer math, RNG determinism,
// running statistics, multiset checksums and scratch directories.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "base/checksum.h"
#include "base/contracts.h"
#include "base/math_util.h"
#include "base/meter.h"
#include "base/rng.h"
#include "base/stats.h"
#include "base/temp_dir.h"

namespace paladin {
namespace {

// ---------------------------------------------------------------------
// Contracts
// ---------------------------------------------------------------------

TEST(Contracts, ViolationThrowsWithLocation) {
  try {
    PALADIN_EXPECTS(1 == 2);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_base.cpp"), std::string::npos);
  }
}

TEST(Contracts, MessageVariantCarriesNote) {
  try {
    PALADIN_EXPECTS_MSG(false, "the note");
    FAIL();
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("the note"), std::string::npos);
  }
}

TEST(Contracts, PassingCheckIsSilent) {
  EXPECT_NO_THROW(PALADIN_EXPECTS(2 + 2 == 4));
  EXPECT_NO_THROW(PALADIN_ENSURES(true));
  EXPECT_NO_THROW(PALADIN_ASSERT(true));
}

// ---------------------------------------------------------------------
// Integer math
// ---------------------------------------------------------------------

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
  EXPECT_THROW(ceil_div(1, 0), ContractViolation);
}

TEST(MathUtil, RoundUp) {
  EXPECT_EQ(round_up(0, 8), 0u);
  EXPECT_EQ(round_up(1, 8), 8u);
  EXPECT_EQ(round_up(8, 8), 8u);
  EXPECT_EQ(round_up(9, 8), 16u);
}

TEST(MathUtil, Ilog2) {
  EXPECT_EQ(ilog2_floor(1), 0u);
  EXPECT_EQ(ilog2_floor(2), 1u);
  EXPECT_EQ(ilog2_floor(3), 1u);
  EXPECT_EQ(ilog2_floor(1024), 10u);
  EXPECT_EQ(ilog2_ceil(1), 0u);
  EXPECT_EQ(ilog2_ceil(3), 2u);
  EXPECT_EQ(ilog2_ceil(1024), 10u);
  EXPECT_EQ(ilog2_ceil(1025), 11u);
}

TEST(MathUtil, IlogCeilArbitraryBase) {
  EXPECT_EQ(ilog_ceil(1, 10), 0u);
  EXPECT_EQ(ilog_ceil(10, 10), 1u);
  EXPECT_EQ(ilog_ceil(11, 10), 2u);
  EXPECT_EQ(ilog_ceil(100, 10), 2u);
  EXPECT_EQ(ilog_ceil(101, 10), 3u);
  // The PDM log_m n term: 1000 blocks with m=32 → 2 levels.
  EXPECT_EQ(ilog_ceil(1000, 32), 2u);
}

TEST(MathUtil, LcmOfVectors) {
  const u32 a[] = {8, 5, 3, 1};
  EXPECT_EQ(lcm_of(a), 120u);  // the paper's worked example
  const u32 b[] = {1, 1, 4, 4};
  EXPECT_EQ(lcm_of(b), 4u);    // the paper's testbed
  const u32 c[] = {1, 1, 1, 1};
  EXPECT_EQ(lcm_of(c), 1u);
  const u32 d[] = {6, 10, 15};
  EXPECT_EQ(lcm_of(d), 30u);
}

TEST(MathUtil, SumOf) {
  const u32 a[] = {8, 5, 3, 1};
  EXPECT_EQ(sum_of(a), 17u);
}

TEST(MathUtil, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(65));
}

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

TEST(Rng, DeterministicAcrossInstances) {
  Xoshiro256 a(1234), b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_THROW(rng.next_below(0), ContractViolation);
}

TEST(Rng, NextInInclusiveRange) {
  Xoshiro256 rng(10);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const u64 v = rng.next_in(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Xoshiro256 rng(12);
  double sum = 0, sum2 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, Mix64IsAPermutationLikeMixer) {
  // Sanity: no trivial fixed points among small inputs, stable values.
  EXPECT_NE(mix64(0), 0u);
  EXPECT_NE(mix64(1), 1u);
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
}

// ---------------------------------------------------------------------
// RunningStats
// ---------------------------------------------------------------------

TEST(RunningStats, MeanAndStddevMatchClosedForm) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(RunningStats, SingleSampleHasZeroDeviation) {
  RunningStats s;
  s.add(3.14);
  EXPECT_DOUBLE_EQ(s.mean(), 3.14);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, EmptyStatsRefuseQueries) {
  RunningStats s;
  EXPECT_THROW(s.mean(), ContractViolation);
  EXPECT_THROW(s.stddev(), ContractViolation);
}

// ---------------------------------------------------------------------
// MultisetChecksum
// ---------------------------------------------------------------------

TEST(MultisetChecksum, OrderIndependent) {
  MultisetChecksum a, b;
  for (u32 v : {5u, 1u, 9u, 1u}) a.add(v);
  for (u32 v : {1u, 1u, 5u, 9u}) b.add(v);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(MultisetChecksum, DetectsMultiplicityChange) {
  MultisetChecksum a, b;
  for (u32 v : {5u, 1u, 9u}) a.add(v);
  for (u32 v : {5u, 1u, 9u, 1u}) b.add(v);
  EXPECT_NE(a, b);
}

TEST(MultisetChecksum, DetectsSwapTamper) {
  // Dropping x and adding y with x+y preserved must still be caught.
  MultisetChecksum a, b;
  a.add(u32{10});
  a.add(u32{20});
  b.add(u32{15});
  b.add(u32{15});
  EXPECT_NE(a, b);
}

TEST(MultisetChecksum, MergeEqualsConcatenation) {
  MultisetChecksum left, right, whole;
  for (u32 v : {1u, 2u, 3u}) left.add(v);
  for (u32 v : {4u, 5u}) right.add(v);
  for (u32 v : {1u, 2u, 3u, 4u, 5u}) whole.add(v);
  left.merge(right);
  EXPECT_EQ(left, whole);
  EXPECT_EQ(left.count(), 5u);
}

TEST(MultisetChecksum, WorksForWiderRecords) {
  struct Rec {
    u64 k;
    u32 payload;
    u32 pad;
  };
  MultisetChecksum a, b;
  a.add(Rec{1, 2, 0});
  b.add(Rec{1, 3, 0});
  EXPECT_NE(a, b);
}

// ---------------------------------------------------------------------
// Meter
// ---------------------------------------------------------------------

TEST(Meter, CountingMeterAccumulates) {
  CountingMeter m;
  m.on_compares(5);
  m.on_compares(7);
  m.on_moves(3);
  m.on_seconds(1.5);
  EXPECT_EQ(m.compares, 12u);
  EXPECT_EQ(m.moves, 3u);
  EXPECT_DOUBLE_EQ(m.seconds, 1.5);
}

// ---------------------------------------------------------------------
// ScopedTempDir
// ---------------------------------------------------------------------

TEST(ScopedTempDir, CreatesAndRemoves) {
  std::filesystem::path p;
  {
    ScopedTempDir dir("paladin-test");
    p = dir.path();
    EXPECT_TRUE(std::filesystem::is_directory(p));
    std::filesystem::create_directories(p / "sub");
  }
  EXPECT_FALSE(std::filesystem::exists(p));
}

TEST(ScopedTempDir, ReleasePreventsCleanup) {
  std::filesystem::path p;
  {
    ScopedTempDir dir("paladin-test");
    p = dir.release();
  }
  EXPECT_TRUE(std::filesystem::exists(p));
  std::filesystem::remove_all(p);
}

TEST(ScopedTempDir, UniqueAcrossInstances) {
  ScopedTempDir a("x"), b("x");
  EXPECT_NE(a.path(), b.path());
}

}  // namespace
}  // namespace paladin
