// Multi-level splitter selection (core/splitter_tree.h):
//
//  * expansion-bound property — the perf-weighted 2× sublist bound
//    (+ duplicate slack, §3.1) holds for the tree strategy over every
//    distribution in kAllDists × p ∈ {4, 16, 64, 256}, including the
//    zipf / all-duplicates adversaries;
//  * flat≡tree equivalence — the degenerate tree configuration (single
//    group, re-sampling disabled) reproduces the flat path bit-for-bit,
//    and the kAuto heuristic below tree_threshold IS the flat path
//    (so the golden traces cannot churn);
//  * bitwise determinism — external tree-strategy runs replay to
//    identical output bytes and makespans;
//  * digest identity — flat and tree full external runs produce the same
//    global sorted sequence and multiset checksum;
//  * the off == 0 regression of draw_regular_sample /
//    PerfVector::sample_stride_clamped (n < p·Σperf at huge p);
//  * weight conservation and budget bounds of the stratified digest
//    reduction itself.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/ext_psrs.h"
#include "core/psrs_incore.h"
#include "core/sampling.h"
#include "core/splitter_tree.h"
#include "core/verify.h"
#include "hetero/perf_vector.h"
#include "metrics/expansion.h"
#include "net/cluster.h"
#include "pdm/typed_io.h"
#include "test_params.h"
#include "workload/generators.h"

namespace paladin::core {
namespace {

using hetero::PerfVector;
using net::Cluster;
using net::ClusterConfig;
using net::NodeContext;
using workload::Dist;
using workload::WorkloadSpec;

// ---------------------------------------------------------------------
// Config helpers.

TEST(SplitterTree, StrategyNamesRoundTrip) {
  for (const SplitterStrategy s :
       {SplitterStrategy::kAuto, SplitterStrategy::kFlat,
        SplitterStrategy::kTree}) {
    SplitterStrategy parsed{};
    ASSERT_TRUE(try_parse_splitter_strategy(to_string(s), parsed));
    EXPECT_EQ(parsed, s);
  }
  SplitterStrategy parsed{};
  EXPECT_FALSE(try_parse_splitter_strategy("pyramid", parsed));
}

TEST(SplitterTree, AutoHeuristicAndGeometry) {
  SplitterConfig cfg;  // defaults: auto, threshold 32
  EXPECT_FALSE(splitter_uses_tree(cfg, 1));
  EXPECT_FALSE(splitter_uses_tree(cfg, 4));
  EXPECT_FALSE(splitter_uses_tree(cfg, 31));
  EXPECT_TRUE(splitter_uses_tree(cfg, 32));
  EXPECT_TRUE(splitter_uses_tree(cfg, 1024));
  cfg.strategy = SplitterStrategy::kTree;
  EXPECT_TRUE(splitter_uses_tree(cfg, 2));
  EXPECT_FALSE(splitter_uses_tree(cfg, 1));  // nothing to gather at p = 1
  cfg.strategy = SplitterStrategy::kFlat;
  EXPECT_FALSE(splitter_uses_tree(cfg, 1024));

  // Auto fanout is ceil(sqrt(p)) clamped to [2, 32].
  cfg = SplitterConfig{};
  EXPECT_EQ(splitter_fanout(cfg, 4), 2u);
  EXPECT_EQ(splitter_fanout(cfg, 64), 8u);
  EXPECT_EQ(splitter_fanout(cfg, 100), 10u);
  EXPECT_EQ(splitter_fanout(cfg, 1024), 32u);
  EXPECT_EQ(splitter_fanout(cfg, 4096), 32u);  // clamp
  cfg.fanout = 5;
  EXPECT_EQ(splitter_fanout(cfg, 1024), 5u);

  EXPECT_EQ(splitter_levels(1, 2), 0u);
  EXPECT_EQ(splitter_levels(4, 2), 2u);
  EXPECT_EQ(splitter_levels(1024, 32), 2u);
  EXPECT_EQ(splitter_levels(1025, 32), 3u);
}

// ---------------------------------------------------------------------
// The stratified digest reduction in isolation.

TEST(SplitterTree, DigestConservesWeightAndRespectsBudget) {
  using WS = WeightedSample<u32>;
  // Three sorted runs with mixed weights.
  std::vector<std::vector<WS>> runs = {
      {{1, 3}, {5, 1}, {9, 4}, {13, 2}},
      {{2, 2}, {5, 5}, {20, 1}},
      {{0, 1}, {30, 7}},
  };
  u64 total = 0;
  for (const auto& r : runs)
    for (const WS& ws : r) total += ws.weight;

  for (const u64 budget : {u64{1}, u64{2}, u64{4}, u64{100}}) {
    auto copy = runs;
    CountingMeter meter;
    const std::vector<WS> digest =
        merge_weighted_runs<u32>(meter, copy, budget, /*merge_equal=*/false);
    u64 kept = 0;
    for (const WS& ws : digest) kept += ws.weight;
    EXPECT_EQ(kept, total) << "budget " << budget;
    // One trailing partial stratum may exceed the budget by one point.
    EXPECT_LE(digest.size(), budget + 1) << "budget " << budget;
    EXPECT_TRUE(std::is_sorted(
        digest.begin(), digest.end(),
        [](const WS& a, const WS& b) { return a.value < b.value; }));
    EXPECT_GT(meter.compares, 0u);
  }

  // Unlimited budget keeps every merged point verbatim.
  auto copy = runs;
  CountingMeter meter;
  const std::vector<WS> exact = merge_weighted_runs<u32>(
      meter, copy, SplitterConfig::kNoDigest, /*merge_equal=*/false);
  EXPECT_EQ(exact.size(), 9u);
  EXPECT_EQ(exact.front().value, 0u);
  EXPECT_EQ(exact.back().value, 30u);
}

TEST(SplitterTree, MergeEqualFoldsDuplicatesInUniqueValueSpace) {
  using WS = WeightedSample<u32>;
  // The same unique value carried by several runs must count once.
  std::vector<std::vector<WS>> runs = {
      {{1, 1}, {5, 1}, {9, 1}},
      {{5, 1}, {9, 1}},
      {{9, 1}, {11, 1}},
  };
  CountingMeter meter;
  const std::vector<WS> digest = merge_weighted_runs<u32>(
      meter, runs, SplitterConfig::kNoDigest, /*merge_equal=*/true);
  ASSERT_EQ(digest.size(), 4u);  // unique values 1, 5, 9, 11
  for (const WS& ws : digest) EXPECT_EQ(ws.weight, 1u);
}

TEST(SplitterTree, WeightedSelectMatchesFlatIndexing) {
  using WS = WeightedSample<u32>;
  // Unit weights: target t must pick digest[min(t-1, size-1)] — the flat
  // paths' index arithmetic.
  std::vector<WS> digest;
  for (u32 v = 0; v < 10; ++v) digest.push_back({100 + v, 1});
  const std::vector<u64> targets = {1, 1, 4, 10, 10, 25};
  const std::vector<u32> picks =
      weighted_select<u32>(std::span<const WS>(digest), targets);
  const std::vector<u32> expect = {100, 100, 103, 109, 109, 109};
  EXPECT_EQ(picks, expect);

  // Weighted: cumulative weights 3, 4, 9 — target 4 lands on the second.
  const std::vector<WS> w = {{7, 3}, {8, 1}, {9, 5}};
  const std::vector<u64> t2 = {3, 4, 5, 9};
  const std::vector<u32> p2 =
      weighted_select<u32>(std::span<const WS>(w), t2);
  const std::vector<u32> e2 = {7, 8, 9, 9};
  EXPECT_EQ(p2, e2);
}

// ---------------------------------------------------------------------
// off == 0 regression (satellite): huge p / small n degrades to the
// densest sample instead of a wrapped stride loop.

TEST(SplitterTree, DrawRegularSampleOffZeroDegradesToStrideOne) {
  const std::vector<u32> sorted = {1, 2, 3, 4, 5};
  const std::vector<u32> at_zero =
      draw_regular_sample<u32>(std::span<const u32>(sorted), 0);
  const std::vector<u32> at_one =
      draw_regular_sample<u32>(std::span<const u32>(sorted), 1);
  EXPECT_EQ(at_zero, at_one);
  const std::vector<u32> expect = {1, 2, 3, 4};  // positions 0..size-2
  EXPECT_EQ(at_zero, expect);
}

TEST(SplitterTree, SampleStrideClampedSurvivesTinyInputs) {
  const PerfVector perf({2, 1, 1, 1});  // sum 5, p 4
  // Regular stride would need n >= p·Σperf·oversample = 40.
  EXPECT_EQ(perf.sample_stride_clamped(10, 2), 1u);
  EXPECT_EQ(perf.sample_stride_clamped(80, 2), 2u);
  EXPECT_EQ(perf.sample_stride_clamped(80, 1), 4u);
}

TEST(SplitterTree, TreePathSortsInputTooSmallForFlatSampling) {
  // n = 10 < p·Σperf = 20: the flat stride underflows (sample_stride
  // rejects it), but the tree path clamps to stride 1 and still sorts.
  const std::vector<u32> perf_values = {2, 1, 1, 1};
  const PerfVector perf(perf_values);
  const u64 n = 10;
  ClusterConfig config;
  config.perf = perf_values;
  Cluster cluster(config);
  WorkloadSpec spec;
  spec.dist = Dist::kUniform;
  spec.total_records = n;
  spec.node_count = perf.node_count();
  spec.seed = 7;

  auto outcome = cluster.run([&](NodeContext& ctx) {
    std::vector<DefaultKey> local = workload::generate_share(
        spec, ctx.rank(), perf.share_offset(ctx.rank(), n),
        perf.share(ctx.rank(), n));
    SplitterConfig splitter;
    splitter.strategy = SplitterStrategy::kTree;
    splitter.fanout = 2;
    return psrs_incore_sort<DefaultKey>(ctx, perf, std::move(local), nullptr,
                                        {}, 1, splitter);
  });

  std::vector<DefaultKey> all;
  for (auto& slice : outcome.results) {
    all.insert(all.end(), slice.begin(), slice.end());
  }
  EXPECT_EQ(all.size(), n);
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
}

// ---------------------------------------------------------------------
// In-core property sweep: correctness + the 2× expansion bound.

struct InCoreRun {
  std::vector<DefaultKey> input;    ///< concatenated shares, rank order
  std::vector<DefaultKey> output;   ///< concatenated slices, rank order
  std::vector<std::vector<DefaultKey>> slices;  ///< per-node outputs
  std::vector<u64> final_sizes;
  std::vector<u64> shares;
  double makespan = 0.0;
};

InCoreRun run_incore(const std::vector<u32>& perf_values, Dist dist, u64 n,
                     const SplitterConfig& splitter, u64 seed = 42) {
  const PerfVector perf(perf_values);
  PALADIN_EXPECTS(perf.is_admissible(n));
  ClusterConfig config;
  config.perf = perf_values;
  config.seed = seed;
  Cluster cluster(config);
  WorkloadSpec spec;
  spec.dist = dist;
  spec.total_records = n;
  spec.node_count = perf.node_count();
  spec.seed = seed ^ 0x5eed;

  struct NodeOut {
    std::vector<DefaultKey> input;
    std::vector<DefaultKey> output;
  };
  auto outcome = cluster.run([&](NodeContext& ctx) -> NodeOut {
    NodeOut out;
    out.input = workload::generate_share(
        spec, ctx.rank(), perf.share_offset(ctx.rank(), n),
        perf.share(ctx.rank(), n));
    out.output = psrs_incore_sort<DefaultKey>(ctx, perf, out.input, nullptr,
                                              {}, 1, splitter);
    return out;
  });

  InCoreRun r;
  r.makespan = outcome.makespan;
  r.shares = perf.shares(n);
  for (auto& node : outcome.results) {
    r.input.insert(r.input.end(), node.input.begin(), node.input.end());
    r.output.insert(r.output.end(), node.output.begin(), node.output.end());
    r.final_sizes.push_back(node.output.size());
    r.slices.push_back(std::move(node.output));
  }
  return r;
}

/// Highest multiplicity of any key — the `d` of the 2·l_i + d bound.
u64 max_multiplicity(std::vector<DefaultKey> keys) {
  std::sort(keys.begin(), keys.end());
  u64 best = 0, run = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    run = (i > 0 && keys[i] == keys[i - 1]) ? run + 1 : 1;
    best = std::max(best, run);
  }
  return best;
}

std::vector<u32> repeat_perf(u32 p) {
  // Repeating {2, 1, 1, 1} — heterogeneous at every scale.
  const u32 pattern[] = {2, 1, 1, 1};
  std::vector<u32> perf;
  perf.reserve(p);
  for (u32 i = 0; i < p; ++i) perf.push_back(pattern[i % 4]);
  return perf;
}

TEST(SplitterTree, ExpansionBoundAcrossDistsAndScales) {
  for (const u32 p : {4u, 16u, 64u, 256u}) {
    const std::vector<u32> perf_values = repeat_perf(p);
    const PerfVector perf(perf_values);
    // Enough records for the densified tree sample (oversample 2) with a
    // real stride, kept small so the 11-dist sweep stays fast.
    const u64 n =
        perf.round_up_admissible(2 * p * perf.sum() * 2);
    SplitterConfig splitter;
    splitter.strategy = SplitterStrategy::kTree;
    for (const Dist dist : workload::kAllDists) {
      SCOPED_TRACE(std::string("p=") + std::to_string(p) +
                   " dist=" + workload::to_string(dist));
      const InCoreRun r = run_incore(perf_values, dist, n, splitter);

      // Oracle: the concatenation is the sorted input.
      std::vector<DefaultKey> oracle = r.input;
      std::sort(oracle.begin(), oracle.end());
      ASSERT_EQ(r.output, oracle);

      // The perf-weighted 2× bound, with the §3.1 duplicate slack.
      const u64 slack = max_multiplicity(r.input);
      EXPECT_TRUE(metrics::within_psrs_bound(
          std::span<const u64>(r.final_sizes),
          std::span<const u64>(r.shares), slack))
          << "expansion " << metrics::sublist_expansion(
                 std::span<const u64>(r.final_sizes), perf);
    }
  }
}

// ---------------------------------------------------------------------
// flat ≡ tree equivalence.

TEST(SplitterTree, DegenerateTreeReproducesFlatExactly) {
  // Single group (fanout >= p) + re-sampling disabled: the root digest is
  // the fully merged sample multiset, so the selected pivots — and hence
  // every node's output slice — must match the flat path bit-for-bit.
  SplitterConfig degenerate;
  degenerate.strategy = SplitterStrategy::kTree;
  degenerate.fanout = 64;
  degenerate.tree_oversample = 1;  // identical leaf sample
  degenerate.digest_per_node = SplitterConfig::kNoDigest;
  SplitterConfig flat;
  flat.strategy = SplitterStrategy::kFlat;

  for (const std::vector<u32>& perf_values :
       {std::vector<u32>{1, 1}, std::vector<u32>{4, 2, 1, 1},
        std::vector<u32>{3, 1, 2, 1, 1, 2, 1, 1}}) {
    const PerfVector perf(perf_values);
    const u64 n = perf.round_up_admissible(
        4 * perf.node_count() * perf.sum());
    for (const Dist dist : {Dist::kUniform, Dist::kZipf, Dist::kZero,
                            Dist::kStaggered}) {
      SCOPED_TRACE(std::string("p=") + std::to_string(perf.node_count()) +
                   " dist=" + workload::to_string(dist));
      const InCoreRun a = run_incore(perf_values, dist, n, flat);
      const InCoreRun b = run_incore(perf_values, dist, n, degenerate);
      EXPECT_EQ(a.slices, b.slices);
      EXPECT_EQ(a.final_sizes, b.final_sizes);
    }
  }
}

TEST(SplitterTree, AutoBelowThresholdIsFlatBitIdentical) {
  // kAuto at p = 4 must take the flat code path: identical outputs AND
  // identical virtual makespans (this is what keeps test_backends and the
  // golden traces unchurned).
  const std::vector<u32> perf_values = {4, 2, 1, 1};
  const PerfVector perf(perf_values);
  const u64 n = perf.round_up_admissible(4 * 4 * perf.sum());
  SplitterConfig flat;
  flat.strategy = SplitterStrategy::kFlat;
  const InCoreRun a = run_incore(perf_values, Dist::kGGroup, n, {});
  const InCoreRun b = run_incore(perf_values, Dist::kGGroup, n, flat);
  EXPECT_EQ(a.slices, b.slices);
  EXPECT_EQ(a.makespan, b.makespan);
}

// ---------------------------------------------------------------------
// External runs: determinism and digest identity.

struct ExternalRun {
  std::vector<DefaultKey> output;  ///< concatenated slices, rank order
  bool sorted_ok = true;
  double makespan = 0.0;
};

ExternalRun run_external(const std::vector<u32>& perf_values, Dist dist,
                         u64 k, const SplitterConfig& splitter) {
  const PerfVector perf(perf_values);
  const u64 n = perf.admissible_size(k);
  ClusterConfig config;
  config.perf = perf_values;
  config.disk = test_params::tiny_blocks();
  Cluster cluster(config);
  WorkloadSpec spec;
  spec.dist = dist;
  spec.total_records = n;
  spec.node_count = perf.node_count();
  spec.seed = 99;

  struct NodeOut {
    std::vector<DefaultKey> output;
    bool sorted;
  };
  auto outcome = cluster.run([&](NodeContext& ctx) -> NodeOut {
    workload::write_share(spec, ctx.rank(), perf.share_offset(ctx.rank(), n),
                          perf.share(ctx.rank(), n), ctx.disk(), "input");
    ExtPsrsConfig psrs;
    psrs.sequential.memory_records = test_params::kMemoryRecords;
    psrs.sequential.tape_count = test_params::kTapeCount;
    psrs.sequential.allow_in_memory = false;
    psrs.message_records = test_params::kMessageRecords;
    psrs.splitter = splitter;
    ext_psrs_sort<DefaultKey>(ctx, perf, psrs);
    NodeOut out;
    out.sorted = verify_global_order<DefaultKey>(ctx, "sorted");
    out.output = pdm::read_file<DefaultKey>(ctx.disk(), "sorted");
    return out;
  });

  ExternalRun r;
  r.makespan = outcome.makespan;
  for (auto& node : outcome.results) {
    r.sorted_ok = r.sorted_ok && node.sorted;
    r.output.insert(r.output.end(), node.output.begin(), node.output.end());
  }
  return r;
}

TEST(SplitterTree, ExternalTreeRunsReplayBitwise) {
  const std::vector<u32> perf_values = {3, 1, 2, 1, 1, 2, 1, 1};
  SplitterConfig splitter;
  splitter.strategy = SplitterStrategy::kTree;
  splitter.fanout = 3;  // two real levels at p = 8
  const ExternalRun a = run_external(perf_values, Dist::kZipf, 20, splitter);
  const ExternalRun b = run_external(perf_values, Dist::kZipf, 20, splitter);
  EXPECT_TRUE(a.sorted_ok);
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(a.makespan, b.makespan);
}

TEST(SplitterTree, ExternalFlatAndTreeProduceIdenticalGlobalSequence) {
  // Different pivots move the slice boundaries, but the globally collected
  // sequence — and therefore its multiset digest — must be identical.
  const std::vector<u32> perf_values = {4, 4, 1, 1, 4, 4, 1, 1,
                                        4, 4, 1, 1, 4, 4, 1, 1};
  SplitterConfig flat;
  flat.strategy = SplitterStrategy::kFlat;
  SplitterConfig tree;
  tree.strategy = SplitterStrategy::kTree;
  for (const Dist dist : {Dist::kUniform, Dist::kDuplicates}) {
    SCOPED_TRACE(workload::to_string(dist));
    const ExternalRun a = run_external(perf_values, dist, 12, flat);
    const ExternalRun b = run_external(perf_values, dist, 12, tree);
    EXPECT_TRUE(a.sorted_ok);
    EXPECT_TRUE(b.sorted_ok);
    EXPECT_EQ(a.output, b.output);
    MultisetChecksum ca, cb;
    ca.add_span(std::span<const DefaultKey>(a.output));
    cb.add_span(std::span<const DefaultKey>(b.output));
    EXPECT_EQ(ca, cb);
  }
}

}  // namespace
}  // namespace paladin::core
