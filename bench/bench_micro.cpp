// Micro-benchmarks (google-benchmark) of the kernels everything else is
// built from: loser-tree merging, run formation (both strategies), the
// streaming partition, and the block I/O layer.  These report real wall
// time (not simulated seconds) and exist to catch performance regressions
// in the substrate itself.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "base/checksum.h"
#include "base/meter.h"
#include "base/rng.h"
#include "core/partition_file.h"
#include "pdm/typed_io.h"
#include "seq/cursors.h"
#include "seq/loser_tree.h"
#include "seq/run_formation.h"

namespace paladin {
namespace {

std::vector<u32> random_keys(u64 n, u64 seed) {
  Xoshiro256 rng(seed);
  std::vector<u32> v(n);
  for (auto& x : v) x = static_cast<u32>(rng.next());
  return v;
}

void BM_LoserTreeMerge(benchmark::State& state) {
  const u64 k = static_cast<u64>(state.range(0));
  const u64 per_run = 1 << 14;
  std::vector<std::vector<u32>> runs(k);
  for (u64 i = 0; i < k; ++i) {
    runs[i] = random_keys(per_run, i);
    std::sort(runs[i].begin(), runs[i].end());
  }
  for (auto _ : state) {
    std::vector<seq::MemCursor<u32>> cursors;
    cursors.reserve(k);
    for (auto& r : runs) cursors.emplace_back(std::span<const u32>(r));
    std::vector<seq::MemCursor<u32>*> sources;
    for (auto& c : cursors) sources.push_back(&c);
    seq::LoserTree<u32, seq::MemCursor<u32>> tree(std::move(sources));
    u64 sum = 0;
    while (const u32* top = tree.peek()) {
      sum += *top;
      tree.pop_discard();
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<i64>(k * per_run));
}
BENCHMARK(BM_LoserTreeMerge)->Arg(2)->Arg(4)->Arg(8)->Arg(15)->Arg(32);

void BM_RunFormation(benchmark::State& state) {
  const bool replacement = state.range(0) != 0;
  const u64 n = 1 << 16;
  const u64 memory = 1 << 12;
  pdm::DiskParams params;
  for (auto _ : state) {
    state.PauseTiming();
    pdm::Disk disk = pdm::Disk::in_memory(params);
    const auto input = random_keys(n, 3);
    pdm::write_file<u32>(disk, "in", std::span<const u32>(input));
    pdm::BlockFile in = disk.open("in");
    pdm::BlockReader<u32> reader(in);
    pdm::BlockFile out = disk.create("runs");
    pdm::BlockWriter<u32> writer(out);
    state.ResumeTiming();

    NullMeter meter;
    auto layout = seq::form_runs<u32>(
        replacement ? seq::RunFormation::kReplacementSelection
                    : seq::RunFormation::kLoadSortStore,
        reader, writer, memory, meter);
    benchmark::DoNotOptimize(layout.total_records);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<i64>(n));
  state.SetLabel(replacement ? "replacement-selection" : "load-sort-store");
}
BENCHMARK(BM_RunFormation)->Arg(0)->Arg(1);

void BM_StreamingPartition(benchmark::State& state) {
  const u32 p = static_cast<u32>(state.range(0));
  const u64 n = 1 << 16;
  pdm::DiskParams params;
  auto sorted = random_keys(n, 9);
  std::sort(sorted.begin(), sorted.end());
  std::vector<u32> pivots;
  for (u32 j = 1; j < p; ++j) pivots.push_back(sorted[j * n / p]);
  for (auto _ : state) {
    state.PauseTiming();
    pdm::Disk disk = pdm::Disk::in_memory(params);
    pdm::write_file<u32>(disk, "s", std::span<const u32>(sorted));
    state.ResumeTiming();
    NullMeter meter;
    auto sizes = core::partition_sorted_file<u32>(
        disk, "s", "p", std::span<const u32>(pivots), meter);
    benchmark::DoNotOptimize(sizes.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<i64>(n));
}
BENCHMARK(BM_StreamingPartition)->Arg(4)->Arg(8)->Arg(16);

void BM_BlockIoRoundTrip(benchmark::State& state) {
  const u64 n = 1 << 16;
  pdm::DiskParams params;
  const auto data = random_keys(n, 4);
  for (auto _ : state) {
    pdm::Disk disk = pdm::Disk::in_memory(params);
    pdm::write_file<u32>(disk, "f", std::span<const u32>(data));
    auto back = pdm::read_file<u32>(disk, "f");
    benchmark::DoNotOptimize(back.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<i64>(n * sizeof(u32) * 2));
}
BENCHMARK(BM_BlockIoRoundTrip);

void BM_MultisetChecksum(benchmark::State& state) {
  const u64 n = 1 << 16;
  const auto data = random_keys(n, 5);
  for (auto _ : state) {
    MultisetChecksum sum;
    sum.add_span(std::span<const u32>(data));
    benchmark::DoNotOptimize(sum.digest());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<i64>(n));
}
BENCHMARK(BM_MultisetChecksum);

}  // namespace
}  // namespace paladin

BENCHMARK_MAIN();
