// Micro-benchmarks (google-benchmark) of the kernels everything else is
// built from: loser-tree merging, run formation (both strategies), the
// streaming partition, and the block I/O layer.  These report real wall
// time (not simulated seconds) and exist to catch performance regressions
// in the substrate itself.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "base/checksum.h"
#include "base/meter.h"
#include "base/rng.h"
#include "core/partition_file.h"
#include "pdm/typed_io.h"
#include "seq/cursors.h"
#include "seq/loser_tree.h"
#include "seq/run_formation.h"

namespace paladin {
namespace {

std::vector<u32> random_keys(u64 n, u64 seed) {
  Xoshiro256 rng(seed);
  std::vector<u32> v(n);
  for (auto& x : v) x = static_cast<u32>(rng.next());
  return v;
}

/// Scratch directory on the real filesystem for the FileDisk kernels.
struct ScopedTempDir {
  std::filesystem::path path;
  explicit ScopedTempDir(const std::string& tag)
      : path(std::filesystem::temp_directory_path() /
             ("paladin_bm_" + tag + "_" + std::to_string(::getpid()))) {
    std::filesystem::create_directories(path);
  }
  ~ScopedTempDir() { std::filesystem::remove_all(path); }
};

/// k sorted runs: randomly interleaved key ranges (gallop worst case) or a
/// range partition of one sorted sequence (gallop best case — the shape
/// sorted/staggered/bucket-sorted workloads produce).
std::vector<std::vector<u32>> make_runs(u64 k, u64 per_run,
                                        bool partitioned) {
  std::vector<std::vector<u32>> runs(k);
  if (partitioned) {
    auto all = random_keys(k * per_run, 11);
    std::sort(all.begin(), all.end());
    for (u64 i = 0; i < k; ++i) {
      runs[i].assign(all.begin() + static_cast<i64>(i * per_run),
                     all.begin() + static_cast<i64>((i + 1) * per_run));
    }
  } else {
    for (u64 i = 0; i < k; ++i) {
      runs[i] = random_keys(per_run, i);
      std::sort(runs[i].begin(), runs[i].end());
    }
  }
  return runs;
}

struct VecSink {
  std::vector<u32>* out;
  void push(u32 v) { out->push_back(v); }
  void push_span(std::span<const u32> s) {
    out->insert(out->end(), s.begin(), s.end());
  }
};

void BM_LoserTreeMerge(benchmark::State& state) {
  const u64 k = static_cast<u64>(state.range(0));
  const u64 per_run = 1 << 14;
  std::vector<std::vector<u32>> runs(k);
  for (u64 i = 0; i < k; ++i) {
    runs[i] = random_keys(per_run, i);
    std::sort(runs[i].begin(), runs[i].end());
  }
  for (auto _ : state) {
    std::vector<seq::MemCursor<u32>> cursors;
    cursors.reserve(k);
    for (auto& r : runs) cursors.emplace_back(std::span<const u32>(r));
    std::vector<seq::MemCursor<u32>*> sources;
    for (auto& c : cursors) sources.push_back(&c);
    seq::LoserTree<u32, seq::MemCursor<u32>> tree(std::move(sources));
    u64 sum = 0;
    while (const u32* top = tree.peek()) {
      sum += *top;
      tree.pop_discard();
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<i64>(k * per_run));
}
BENCHMARK(BM_LoserTreeMerge)->Arg(2)->Arg(4)->Arg(8)->Arg(15)->Arg(32);

// Per-record pops vs pop_run_into bulk drain, on randomly interleaved
// runs and on a range partition (where the gallop drains whole buffers).
void BM_MergeModes(benchmark::State& state) {
  const u64 k = static_cast<u64>(state.range(0));
  const bool partitioned = state.range(1) != 0;
  const bool bulk = state.range(2) != 0;
  const u64 per_run = 1 << 14;
  const auto runs = make_runs(k, per_run, partitioned);
  for (auto _ : state) {
    std::vector<seq::MemCursor<u32>> cursors;
    cursors.reserve(k);
    for (auto& r : runs) cursors.emplace_back(std::span<const u32>(r));
    std::vector<seq::MemCursor<u32>*> sources;
    for (auto& c : cursors) sources.push_back(&c);
    seq::LoserTree<u32, seq::MemCursor<u32>> tree(std::move(sources));
    std::vector<u32> out;
    out.reserve(k * per_run);
    if (bulk) {
      VecSink sink{&out};
      tree.pop_run_into(sink);
    } else {
      while (const u32* top = tree.peek()) {
        out.push_back(*top);
        tree.pop_discard();
      }
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<i64>(k * per_run));
  state.SetLabel(std::string(partitioned ? "partitioned" : "interleaved") +
                 (bulk ? "/bulk" : "/per-record"));
}
BENCHMARK(BM_MergeModes)
    ->Args({8, 0, 0})
    ->Args({8, 0, 1})
    ->Args({8, 1, 0})
    ->Args({8, 1, 1})
    ->Args({15, 1, 0})
    ->Args({15, 1, 1});

void BM_RunFormation(benchmark::State& state) {
  const bool replacement = state.range(0) != 0;
  const u64 n = 1 << 16;
  const u64 memory = 1 << 12;
  pdm::DiskParams params;
  for (auto _ : state) {
    state.PauseTiming();
    pdm::Disk disk = pdm::Disk::in_memory(params);
    const auto input = random_keys(n, 3);
    pdm::write_file<u32>(disk, "in", std::span<const u32>(input));
    pdm::BlockFile in = disk.open("in");
    pdm::BlockReader<u32> reader(in);
    pdm::BlockFile out = disk.create("runs");
    pdm::BlockWriter<u32> writer(out);
    state.ResumeTiming();

    NullMeter meter;
    auto layout = seq::form_runs<u32>(
        replacement ? seq::RunFormation::kReplacementSelection
                    : seq::RunFormation::kLoadSortStore,
        reader, writer, memory, meter);
    benchmark::DoNotOptimize(layout.total_records);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<i64>(n));
  state.SetLabel(replacement ? "replacement-selection" : "load-sort-store");
}
BENCHMARK(BM_RunFormation)->Arg(0)->Arg(1);

void BM_StreamingPartition(benchmark::State& state) {
  const u32 p = static_cast<u32>(state.range(0));
  const u64 n = 1 << 16;
  pdm::DiskParams params;
  auto sorted = random_keys(n, 9);
  std::sort(sorted.begin(), sorted.end());
  std::vector<u32> pivots;
  for (u32 j = 1; j < p; ++j) pivots.push_back(sorted[j * n / p]);
  for (auto _ : state) {
    state.PauseTiming();
    pdm::Disk disk = pdm::Disk::in_memory(params);
    pdm::write_file<u32>(disk, "s", std::span<const u32>(sorted));
    state.ResumeTiming();
    NullMeter meter;
    auto sizes = core::partition_sorted_file<u32>(
        disk, "s", "p", std::span<const u32>(pivots), meter);
    benchmark::DoNotOptimize(sizes.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<i64>(n));
}
BENCHMARK(BM_StreamingPartition)->Arg(4)->Arg(8)->Arg(16);

void BM_BlockIoRoundTrip(benchmark::State& state) {
  const u64 n = 1 << 16;
  pdm::DiskParams params;
  params.bulk_transfers = state.range(0) != 0;
  const auto data = random_keys(n, 4);
  for (auto _ : state) {
    pdm::Disk disk = pdm::Disk::in_memory(params);
    pdm::write_file<u32>(disk, "f", std::span<const u32>(data));
    auto back = pdm::read_file<u32>(disk, "f");
    benchmark::DoNotOptimize(back.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<i64>(n * sizeof(u32) * 2));
  state.SetLabel(params.bulk_transfers ? "bulk" : "per-record");
}
BENCHMARK(BM_BlockIoRoundTrip)->Arg(0)->Arg(1);

// The same round trip through real files: per-record vs bulk vs
// bulk+overlapped (write-behind / read-ahead through the IoExecutor).
void BM_FileIoRoundTrip(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  pdm::DiskParams params;
  params.bulk_transfers = mode >= 1;
  params.io_mode = mode == 2 ? pdm::IoMode::kOverlapped : pdm::IoMode::kSync;
  const u64 n = 1 << 18;
  const auto data = random_keys(n, 4);
  ScopedTempDir dir("fileio");
  u64 iter = 0;
  for (auto _ : state) {
    pdm::Disk disk = pdm::Disk::posix(dir.path, params);
    const std::string name = "f" + std::to_string(iter++);
    pdm::write_file<u32>(disk, name, std::span<const u32>(data));
    auto back = pdm::read_file<u32>(disk, name);
    benchmark::DoNotOptimize(back.data());
    disk.remove(name);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<i64>(n * sizeof(u32) * 2));
  state.SetLabel(mode == 0   ? "sync/per-record"
                 : mode == 1 ? "sync/bulk"
                             : "overlapped/bulk");
}
BENCHMARK(BM_FileIoRoundTrip)->Arg(0)->Arg(1)->Arg(2);

void BM_MultisetChecksum(benchmark::State& state) {
  const u64 n = 1 << 16;
  const auto data = random_keys(n, 5);
  for (auto _ : state) {
    MultisetChecksum sum;
    sum.add_span(std::span<const u32>(data));
    benchmark::DoNotOptimize(sum.digest());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<i64>(n));
}
BENCHMARK(BM_MultisetChecksum);

}  // namespace
}  // namespace paladin

BENCHMARK_MAIN();
