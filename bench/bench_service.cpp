// Sort-as-a-service throughput and isolation on the paper's simulated
// testbed: one deterministic open-arrival workload of small jobs with a
// pathological monster (huge n, zipf-skewed keys, demanding the whole
// cluster) injected at a fixed cadence, run under both scheduling
// policies.  The headline numbers are jobs per virtual second and the
// p50/p95/p99 job-latency percentiles; the isolation claim — under
// fair-share the monster cannot starve the small jobs — is *asserted*,
// not just reported: the small-job p99 under fair-share must beat FIFO's,
// and every job must verify (order + permutation).
//
// Machine-readable results land in bench_results/BENCH_service.json; the
// EXPERIMENTS.md service tables are generated from this output, and
// tools/check_perf_regression.py --service gates throughput drift in CI.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "metrics/table.h"
#include "service/service.h"
#include "service/workload.h"

namespace paladin::bench {
namespace {

using service::JobReport;
using service::OpenArrivalSpec;
using service::SchedulePolicy;
using service::ServiceConfig;
using service::ServiceReport;
using service::SortService;

struct Row {
  std::string policy;
  u64 jobs = 0;
  u64 small_jobs = 0;
  u64 patho_jobs = 0;
  double makespan_s = 0.0;
  double jobs_per_vsec = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  double small_p99_s = 0.0;
  bool all_ok = false;
};

Row summarize(const char* name, const ServiceReport& report,
              u64 small_threshold) {
  Row r;
  r.policy = name;
  r.jobs = report.jobs.size();
  r.makespan_s = report.makespan_s;
  r.jobs_per_vsec = report.jobs_per_vsecond();
  r.p50_s = latency_percentile(report.jobs, 0.50);
  r.p95_s = latency_percentile(report.jobs, 0.95);
  r.p99_s = latency_percentile(report.jobs, 0.99);
  std::vector<JobReport> smalls;
  for (const JobReport& j : report.jobs) {
    if (j.spec.records < small_threshold) {
      smalls.push_back(j);
    } else {
      ++r.patho_jobs;
    }
  }
  r.small_jobs = smalls.size();
  r.small_p99_s = latency_percentile(
      std::span<const JobReport>(smalls), 0.99);
  r.all_ok = report.all_ok();
  return r;
}

void append_json(std::string& json, const Row& r, bool first) {
  if (!first) json += ",\n";
  json += "    {\"policy\": \"" + r.policy +
          "\", \"jobs\": " + std::to_string(r.jobs) +
          ", \"small_jobs\": " + std::to_string(r.small_jobs) +
          ", \"patho_jobs\": " + std::to_string(r.patho_jobs) +
          ", \"makespan_s\": " + metrics::TextTable::fmt(r.makespan_s, 6) +
          ", \"jobs_per_vsec\": " +
          metrics::TextTable::fmt(r.jobs_per_vsec, 8) +
          ", \"p50_s\": " + metrics::TextTable::fmt(r.p50_s, 6) +
          ", \"p95_s\": " + metrics::TextTable::fmt(r.p95_s, 6) +
          ", \"p99_s\": " + metrics::TextTable::fmt(r.p99_s, 6) +
          ", \"small_p99_s\": " + metrics::TextTable::fmt(r.small_p99_s, 6) +
          ", \"all_ok\": " + (r.all_ok ? "true" : "false") + "}";
}

int run(const BenchOptions& opt) {
  // The open-arrival workload: a stream of small mixed-backend jobs with
  // a full-width zipf monster every 6th arrival.  Deterministic per seed,
  // identical for both policies.
  OpenArrivalSpec wspec;
  wspec.seed = 2026;
  wspec.job_count = opt.full ? 24 : 12;
  // Tight enough that jobs genuinely queue (a small job takes ~0.1
  // virtual seconds, the monster ~1 s): contention is the whole point.
  wspec.mean_interarrival_s = 0.25;
  wspec.min_records = scaled_pow2(opt, 16);
  wspec.max_records = scaled_pow2(opt, 18);
  wspec.mixed_backends = true;
  wspec.pathological_every = 6;
  wspec.pathological_records = scaled_pow2(opt, 22);

  auto run_policy = [&](SchedulePolicy policy) {
    ServiceConfig sc;
    sc.cluster = paper_cluster(opt);
    sc.policy = policy;
    sc.seed = 2026;
    sc.sort.sequential.memory_records = scaled_memory(opt);
    sc.sort.sequential.allow_in_memory = false;
    sc.sort.message_records = 8192;
    SortService svc(sc);
    return svc.run(service::open_arrival_workload(
        wspec, sc.cluster.node_count()));
  };

  heading("Sort service: " + std::to_string(wspec.job_count) +
          " open-arrival jobs (monster every " +
          std::to_string(wspec.pathological_every) + "th, " +
          std::to_string(wspec.pathological_records) +
          " zipf records), cluster {4,4,1,1}");

  const ServiceReport fifo = run_policy(SchedulePolicy::kFifo);
  const ServiceReport fair = run_policy(SchedulePolicy::kFairShare);

  // Small = anything under the monster size (arrivals draw at most
  // max_records, far below pathological_records).
  const u64 small_threshold = wspec.pathological_records;
  const Row r_fifo = summarize("fifo", fifo, small_threshold);
  const Row r_fair = summarize("fair-share", fair, small_threshold);

  metrics::TextTable table({"policy", "jobs/vsec", "p50 (s)", "p95 (s)",
                            "p99 (s)", "small p99 (s)", "ok"});
  for (const Row* r : {&r_fifo, &r_fair}) {
    table.add_row({r->policy, metrics::TextTable::fmt(r->jobs_per_vsec, 6),
                   fmt_seconds(r->p50_s), fmt_seconds(r->p95_s),
                   fmt_seconds(r->p99_s), fmt_seconds(r->small_p99_s),
                   r->all_ok ? "yes" : "NO"});
  }
  table.print(std::cout);
  note("latency = finish - arrival on the shared virtual-time axis; "
       "small = the non-pathological jobs");

  // The isolation demonstration, asserted: under FIFO the monster
  // head-of-line-blocks the small jobs; fair-share width-caps it, so the
  // small-job tail latency must improve.
  bool ok = r_fifo.all_ok && r_fair.all_ok;
  if (r_fair.small_p99_s < r_fifo.small_p99_s) {
    note("isolation: small-job p99 " + fmt_seconds(r_fair.small_p99_s) +
         " (fair-share) < " + fmt_seconds(r_fifo.small_p99_s) +
         " (fifo) -- the monster cannot starve the small jobs");
  } else {
    note("ISOLATION FAILURE: fair-share small-job p99 " +
         fmt_seconds(r_fair.small_p99_s) + " did not beat fifo's " +
         fmt_seconds(r_fifo.small_p99_s));
    ok = false;
  }

  if (!opt.obs_out.empty()) {
    obs::write_text_file(opt.obs_out + ".report.json",
                         service_report_json(fair));
    note("wrote " + opt.obs_out + ".report.json (fair-share service report)");
  }

  std::filesystem::create_directories("bench_results");
  std::ofstream out("bench_results/BENCH_service.json");
  out << "{\n  \"bench\": \"service\",\n  \"cluster\": \"4,4,1,1\",\n"
      << "  \"job_count\": " << wspec.job_count << ",\n  \"rows\": [\n";
  std::string json;
  append_json(json, r_fifo, true);
  append_json(json, r_fair, false);
  out << json << "\n  ]\n}\n";
  out.close();
  note("wrote bench_results/BENCH_service.json");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace paladin::bench

int main(int argc, char** argv) {
  return paladin::bench::run(paladin::bench::BenchOptions::parse(argc, argv));
}
