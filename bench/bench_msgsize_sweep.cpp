// Reproduces the paper's §5 message-size finding (its only parameter
// series, treated here as a figure): on the homogeneous configuration,
// redistribution packets of 8 integers are catastrophic — slower than the
// sequential sort — while 8K-integer packets are near-optimal ("It seems
// that 8K gives the best time performance").  We sweep the packet size and
// print the series; the paper's two calibration points are shown inline.
#include <iostream>

#include "bench/bench_common.h"
#include "core/ext_psrs.h"
#include "hetero/perf_vector.h"
#include "metrics/table.h"
#include "workload/generators.h"

namespace paladin::bench {
namespace {

int run(const BenchOptions& opt) {
  const u64 n = scaled_pow2(opt, 21);  // paper: 2097152 integers
  const u64 memory = scaled_memory(opt);
  hetero::PerfVector perf({1, 1, 1, 1});

  heading("Figure (from §5 prose): execution time vs message size");
  note(opt.full ? "paper-scale: 2^21 integers, homogeneous perf"
                : "scaled: 2^17 integers (run with --full for paper scale)");

  metrics::TextTable table({"requested (ints)", "effective (ints)",
                            "message bytes", "phased (s)", "deviation",
                            "pipelined (s)", "messages/node", "paper (s)"});

  const u64 sizes[] = {8, 64, 512, 2048, 8192, 32768, 262144};
  for (u64 message_records : sizes) {
    RunningStats time_phased;
    RunningStats time_pipelined;
    u64 messages = 0;
    u64 effective = 0;
    for (u32 rep = 0; rep < opt.reps; ++rep) {
      for (const bool pipelined : {false, true}) {
        net::ClusterConfig config = paper_cluster(opt);
        config.perf = {1, 1, 1, 1};  // the paper ran this homogeneous
        config.seed = 500 + rep;
        net::Cluster cluster(config);

        workload::WorkloadSpec spec;
        spec.dist = workload::Dist::kUniform;
        spec.total_records = n;
        spec.node_count = 4;
        spec.seed = config.seed;

        auto outcome =
            cluster.run([&](net::NodeContext& ctx) -> core::ExtPsrsReport {
              workload::write_share(spec, ctx.rank(),
                                    perf.share_offset(ctx.rank(), n),
                                    perf.share(ctx.rank(), n), ctx.disk(),
                                    "input");
              core::ExtPsrsConfig psrs;
              psrs.sequential.memory_records = memory;
              psrs.sequential.tape_count = 15;
              psrs.sequential.allow_in_memory = false;
              psrs.message_records = message_records;
              psrs.pipelined = pipelined;
              ctx.clock().reset();
              return core::ext_psrs_sort<DefaultKey>(ctx, perf, psrs);
            });
        (pipelined ? time_pipelined : time_phased).add(outcome.makespan);
        if (!pipelined) {
          messages = outcome.results[0].messages_sent;
          effective = outcome.results[0].effective_message_records;
        }
      }
    }
    std::string paper = "-";
    if (message_records == 8) paper = "133.61*";
    if (message_records == 8192) paper = "32.60";
    table.add_row({std::to_string(message_records),
                   std::to_string(effective),
                   std::to_string(effective * sizeof(DefaultKey)),
                   fmt_seconds(time_phased.mean()),
                   fmt_seconds(time_phased.stddev()),
                   fmt_seconds(time_pipelined.mean()),
                   std::to_string(messages), paper});
  }
  table.print(std::cout);
  note("messages are clamped up to whole disk blocks (32 KiB = 8192 ints), "
       "per the paper's block-multiple message requirement, so requested "
       "sizes below one block collapse onto the 8192 row");
  note("paper*: 8-integer packets took 133.61 s (worse than one node's "
       "sequential 22.9 s) — that pathological regime is exactly what the "
       "block-multiple clamp now forbids; 8K packets 32.6 s were the "
       "paper's optimum, matching the clamp's floor");
  return 0;
}

}  // namespace
}  // namespace paladin::bench

int main(int argc, char** argv) {
  return paladin::bench::run(paladin::bench::BenchOptions::parse(argc, argv));
}
