// Reproduces Table 3 of the paper: external PSRS on the 4-node testbed
// (two nodes 4x faster than the two loaded ones), 2^24 integers, 32 KB
// messages, 15 intermediate files, with three configurations:
//
//   perf {1,1,1,1} on Fast-Ethernet  (heterogeneity ignored)
//   perf {4,4,1,1} on Fast-Ethernet  (the paper's contribution)
//   perf {4,4,1,1} on Myrinet        (does a faster network help?)
//
// Columns mirror the paper: input size, mean exe time, deviation, mean and
// max partition sizes on the fastest nodes, and the sublist expansion
// S(max).  The preamble prints the simulated Table 1 configuration, and
// the footer reproduces the paper's gain arithmetic against the Table 2
// sequential times.
#include <iostream>

#include "bench/bench_common.h"
#include "core/ext_psrs.h"
#include "core/sort_driver.h"
#include "core/verify.h"
#include "hetero/perf_vector.h"
#include "metrics/expansion.h"
#include "metrics/table.h"
#include "workload/generators.h"

namespace paladin::bench {
namespace {

using core::ExtPsrsConfig;
using core::ExtPsrsReport;
using hetero::PerfVector;

struct ConfigRow {
  std::string label;
  std::vector<u32> perf;
  net::NetworkModel network;
  double paper_time;       // Table 3 exe time
  double paper_expansion;  // Table 3 S(max)
};

struct RowResult {
  RunningStats time;
  RunningStats mean_fast_partition;
  RunningStats expansion_fast;
  u64 max_partition = 0;
  double seq_fast = 0, seq_slow = 0;  // per-config sequential references
};

void print_table1(const net::ClusterConfig& config) {
  heading("Table 1 (simulated configuration)");
  metrics::TextTable t({"node", "speed factor", "disk", "network"});
  const char* names[] = {"helmvige", "grimgerde", "siegrune", "rossweisse"};
  for (u32 i = 0; i < config.node_count(); ++i) {
    t.add_row({names[i], std::to_string(config.perf[i]),
               "SCSI model (" +
                   metrics::TextTable::fmt(
                       config.disk.transfer_bytes_per_second / 1e6, 0) +
                   " MB/s, " +
                   metrics::TextTable::fmt(config.disk.access_seconds * 1e3,
                                           1) +
                   " ms)",
               config.network.name});
  }
  t.print(std::cout);
  note("heterogeneity is simulated as constant multiplicative load, as in "
       "the paper (forked processes on siegrune/rossweisse)");
}

int run(const BenchOptions& opt) {
  const u64 n_homo = scaled_pow2(opt, 24);        // paper: 16777216
  const u64 n_hetero = n_homo + (opt.full ? 4 : 0);  // paper: 16777220
  const u64 memory = scaled_memory(opt);

  net::ClusterConfig base = paper_cluster(opt);
  print_table1(base);

  heading("Table 3: external PSRS, message 32Kb, 15 intermediate files");
  note(opt.full ? "paper-scale: 2^24 integers"
                : "scaled: 2^20 integers (run with --full for paper scale)");

  const std::vector<ConfigRow> rows = {
      {"perf {1,1,1,1}; Fast-Ethernet",
       {1, 1, 1, 1},
       net::NetworkModel::fast_ethernet(),
       303.94,
       1.00273},
      {"perf {4,4,1,1}; Fast-Ethernet",
       {4, 4, 1, 1},
       net::NetworkModel::fast_ethernet(),
       155.41,
       1.094},
      {"perf {4,4,1,1}; Myrinet",
       {4, 4, 1, 1},
       net::NetworkModel::myrinet(),
       155.43,
       1.093},
  };

  metrics::TextTable table({"configuration", "mode", "input size",
                            "exe time (s)", "deviation", "mean", "max",
                            "S(max)", "paper t (s)", "paper S(max)"});

  // Per-node state the phased/pipelined comparison checks for equality:
  // multiset digest of the output plus the sortedness verdict.
  struct ModeOutcome {
    RowResult acc;
    std::vector<u64> digests;  ///< per-node output digest, first rep
    bool all_sorted = true;
  };

  std::vector<double> measured_times;           // phased, per config
  std::vector<double> measured_times_pipelined;  // pipelined, per config
  for (const ConfigRow& row : rows) {
    PerfVector algo_perf(row.perf);
    const u64 n =
        algo_perf.homogeneous() ? n_homo : algo_perf.round_up_admissible(n_hetero);

    // With --obs-out=PREFIX the paper's headline configuration — hetero
    // perf {4,4,1,1} on Fast-Ethernet, pipelined, first repetition — is
    // traced and exported (PREFIX.trace.json + PREFIX.report.json).
    const bool obs_row = !opt.obs_out.empty() && row.perf == std::vector<u32>{4, 4, 1, 1} &&
                         row.network.name == net::NetworkModel::fast_ethernet().name;

    auto run_mode = [&](bool pipelined) -> ModeOutcome {
      ModeOutcome mode_out;
      for (u32 rep = 0; rep < opt.reps; ++rep) {
        net::ClusterConfig config = base;  // true machine speeds {4,4,1,1}
        config.network = row.network;
        config.seed = 7100 + rep;
        config.observe = obs_row && pipelined && rep == 0;
        net::Cluster cluster(config);

        workload::WorkloadSpec spec;
        spec.dist = workload::Dist::kUniform;
        spec.total_records = n;
        spec.node_count = 4;
        spec.seed = config.seed;

        struct NodeOut {
          ExtPsrsReport report;
          u64 digest = 0;
          bool sorted = false;
        };
        auto outcome = cluster.run([&](net::NodeContext& ctx) -> NodeOut {
          workload::write_share(spec, ctx.rank(),
                                algo_perf.share_offset(ctx.rank(), n),
                                algo_perf.share(ctx.rank(), n), ctx.disk(),
                                "input");
          ExtPsrsConfig psrs;
          psrs.sequential.memory_records = memory;
          psrs.sequential.tape_count = 15;
          psrs.sequential.allow_in_memory = false;
          psrs.message_records = 8192;  // 32 KB of 4-byte integers
          psrs.pipelined = pipelined;
          ctx.clock().reset();          // time the sort, not data generation
          NodeOut out;
          out.report = core::ext_psrs_sort<DefaultKey>(ctx, algo_perf, psrs);
          out.digest =
              core::file_checksum<DefaultKey>(ctx.disk(), "sorted").digest();
          out.sorted = core::verify_global_order<DefaultKey>(ctx, "sorted");
          return out;
        });

        if (config.observe) {
          obs::ClusterTrace trace = core::collect_cluster_trace(outcome);
          trace.set_meta("tool", "bench_table3_parallel");
          trace.set_meta("configuration", row.label);
          trace.set_meta("mode", "pipelined");
          trace.set_meta("records", std::to_string(n));
          trace.set_meta("seed", std::to_string(config.seed));
          if (core::write_obs_outputs(trace, opt.obs_out)) {
            note("wrote " + opt.obs_out + ".trace.json and " + opt.obs_out +
                 ".report.json");
          } else {
            std::cerr << "warning: failed to write --obs-out files under "
                      << opt.obs_out << "\n";
          }
        }

        RowResult& acc = mode_out.acc;
        acc.time.add(outcome.makespan);
        // The paper's "Mean"/"Max"/"S(max)" columns are over the fastest
        // nodes in the heterogeneous rows, all nodes in the homogeneous
        // row.
        std::vector<u64> finals;
        for (const auto& r : outcome.results) {
          finals.push_back(r.report.final_records);
          mode_out.all_sorted = mode_out.all_sorted && r.sorted;
          if (rep == 0) mode_out.digests.push_back(r.digest);
        }
        u64 fast_sum = 0, fast_count = 0, fast_max = 0;
        for (u32 i = 0; i < 4; ++i) {
          if (algo_perf[i] == algo_perf[0]) {  // the fastest class
            fast_sum += finals[i];
            fast_max = std::max(fast_max, finals[i]);
            ++fast_count;
          }
        }
        const double fast_opt =
            static_cast<double>(n) * algo_perf[0] /
            static_cast<double>(algo_perf.sum());
        acc.mean_fast_partition.add(static_cast<double>(fast_sum) /
                                    static_cast<double>(fast_count));
        acc.expansion_fast.add(static_cast<double>(fast_max) / fast_opt);
        acc.max_partition = std::max(acc.max_partition, fast_max);
      }
      return mode_out;
    };

    const ModeOutcome phased = run_mode(false);
    const ModeOutcome pipelined = run_mode(true);
    // Identical verification across modes: same sortedness verdict and the
    // same per-node multiset digests.
    PALADIN_ASSERT(phased.all_sorted && pipelined.all_sorted);
    PALADIN_ASSERT(phased.digests == pipelined.digests);

    for (const auto* m : {&phased, &pipelined}) {
      const RowResult& acc = m->acc;
      table.add_row({row.label, m == &phased ? "phased" : "pipelined",
                     std::to_string(n), fmt_seconds(acc.time.mean()),
                     fmt_seconds(acc.time.stddev()),
                     metrics::TextTable::fmt(acc.mean_fast_partition.mean(), 1),
                     std::to_string(acc.max_partition),
                     metrics::TextTable::fmt(acc.expansion_fast.mean(), 4),
                     fmt_seconds(row.paper_time),
                     metrics::TextTable::fmt(row.paper_expansion, 4)});
    }
    measured_times.push_back(phased.acc.time.mean());
    measured_times_pipelined.push_back(pipelined.acc.time.mean());
  }
  table.print(std::cout);
  if (!opt.full) {
    note("paper columns refer to the 16x larger --full size; compare "
         "ratios and shapes");
  }
  note("pipelined rows fuse steps 3-5 (partition->send->merge overlap); "
       "per-node output digests verified identical to phased");

  heading("Shape checks (paper section 5)");
  note("hetero/homo speedup: " +
       metrics::TextTable::fmt(measured_times[0] / measured_times[1], 2) +
       "   — paper: " + metrics::TextTable::fmt(303.94 / 155.41, 2));
  note("Myrinet vs Fast-Ethernet: " +
       metrics::TextTable::fmt(measured_times[2] / measured_times[1], 3) +
       "   — paper: " + metrics::TextTable::fmt(155.43 / 155.41, 3) +
       " (no improvement: the sort is communication-light)");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    note(rows[i].label + " pipelined/phased: " +
         metrics::TextTable::fmt(
             measured_times_pipelined[i] / measured_times[i], 3) +
         "x virtual time");
  }
  return 0;
}

}  // namespace
}  // namespace paladin::bench

int main(int argc, char** argv) {
  return paladin::bench::run(paladin::bench::BenchOptions::parse(argc, argv));
}
