// Reproduces Table 2 of the paper: the sequential external sort (polyphase
// merge sort) run per node to fill the perf array.  Four nodes — helmvige
// and grimgerde unloaded, siegrune and rossweisse loaded 4x — each sort
// 2^21 … 2^25 uniform integers; the table reports mean execution time and
// deviation, and the closing step converts the ratios into the perf vector
// {4,4,1,1} exactly as §5 describes.
#include <iostream>

#include "bench/bench_common.h"
#include "hetero/calibration.h"
#include "metrics/table.h"
#include "net/cluster.h"
#include "pdm/typed_io.h"
#include "seq/external_sort.h"
#include "workload/generators.h"

namespace paladin::bench {
namespace {

int run(const BenchOptions& opt) {
  heading("Table 2: external sorting per node (polyphase merge sort)");
  note(opt.full ? "paper-scale sizes 2^21..2^25"
                : "scaled sizes 2^17..2^21 (run with --full for paper scale)");

  const char* node_names[] = {"helmvige", "grimgerde", "siegrune",
                              "rossweisse"};
  // Paper values (seconds) for comparison, per node, sizes 2^21..2^25.
  const double paper_fast[] = {22.92, 51.18, 111.41, 235.74, 492.02};
  const double paper_slow[] = {95.40, 204.66, 428.42, 951.23, 1998.72};

  net::ClusterConfig config = paper_cluster(opt);

  seq::ExternalSortConfig sort_config;
  sort_config.memory_records = scaled_memory(opt);
  sort_config.tape_count = 15;
  sort_config.allow_in_memory = false;

  metrics::TextTable table({"node", "perf", "input size", "exe time (s)",
                            "deviation", "paper (s)"});

  std::vector<double> last_row_seconds(4, 0.0);
  for (u32 log2n = 21; log2n <= 25; ++log2n) {
    const u64 n = scaled_pow2(opt, log2n);
    std::vector<RunningStats> stats(4);
    for (u32 rep = 0; rep < opt.reps; ++rep) {
      net::ClusterConfig rep_config = config;
      rep_config.seed = 9000 + rep;
      net::Cluster cluster(rep_config);
      auto outcome = cluster.run([&](net::NodeContext& ctx) -> double {
        workload::WorkloadSpec spec;
        spec.dist = workload::Dist::kUniform;
        spec.total_records = n;
        spec.node_count = 1;
        spec.seed = rep_config.seed + ctx.rank();
        workload::write_share(spec, 0, 0, n, ctx.disk(), "t2.in");
        const double before = ctx.clock().now();
        seq::external_sort<DefaultKey>(ctx.disk(), "t2.in", "t2.out",
                                       sort_config, ctx);
        ctx.disk().remove("t2.in");
        ctx.disk().remove("t2.out");
        return ctx.clock().now() - before;
      });
      for (u32 i = 0; i < 4; ++i) stats[i].add(outcome.results[i]);
    }
    for (u32 i = 0; i < 4; ++i) {
      const double paper =
          (config.perf[i] == 4 ? paper_fast : paper_slow)[log2n - 21];
      table.add_row({node_names[i], std::to_string(config.perf[i]),
                     std::to_string(n), fmt_seconds(stats[i].mean()),
                     fmt_seconds(stats[i].stddev()),
                     opt.full ? fmt_seconds(paper) : fmt_seconds(paper) + "*"});
      last_row_seconds[i] = stats[i].mean();
    }
  }
  table.print(std::cout);
  if (!opt.full) {
    note("* paper values are for the 16x larger --full sizes; compare "
         "ratios, not absolutes");
  }

  // The paper's protocol: time ratios to the slowest fill the perf array.
  const hetero::PerfVector derived = hetero::times_to_perf(last_row_seconds);
  note("derived perf vector (ratios to slowest): " + derived.to_string() +
       "   — paper concludes {4,4,1,1}");
  note("fast/slow time ratio at the largest size: " +
       metrics::TextTable::fmt(last_row_seconds[3] / last_row_seconds[0], 2) +
       "   — paper: " + metrics::TextTable::fmt(1998.72 / 492.02, 2));
  return 0;
}

}  // namespace
}  // namespace paladin::bench

int main(int argc, char** argv) {
  return paladin::bench::run(paladin::bench::BenchOptions::parse(argc, argv));
}
