// Head-to-head of the four parallel external-sort backends on the paper's
// simulated testbed: ext-psrs (the paper's Algorithm 1), ext-distribution
// (sample-splitter distribution sort), ext-overpartition (LPT bucket
// over-partitioning) and ext-multiway (Rahn/Sanders/Singler-style multiway
// merge with one global merge pass).  Every backend runs the same scenario
// matrix — the paper's key distributions plus the adversarial inputs
// (all-equal, pre-sorted, reverse-sorted, zipf-skewed) and a wide-payload
// 100-byte Datamation scenario — and each cell is verified (layout-aware
// sortedness + record conservation) before its makespan is reported.
//
// Machine-readable results land in bench_results/BENCH_backends.json; the
// EXPERIMENTS.md comparison table is generated from this output.
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <vector>

#include "base/stats.h"
#include "bench/bench_common.h"
#include "core/backend.h"
#include "core/sort_driver.h"
#include "core/verify.h"
#include "hetero/perf_vector.h"
#include "metrics/expansion.h"
#include "metrics/table.h"
#include "net/cluster.h"
#include "pdm/typed_io.h"
#include "workload/datamation.h"
#include "workload/generators.h"

namespace paladin::bench {
namespace {

using core::ParallelSortAlgorithm;
using hetero::PerfVector;
using workload::DatamationLess;
using workload::DatamationRecord;
using workload::Dist;

struct Row {
  std::string backend;
  std::string scenario;
  u64 records = 0;
  u64 record_bytes = 0;
  double makespan_s = 0.0;
  double expansion = 0.0;
  bool sorted = false;
  bool conserved = false;
};

struct CellResult {
  double makespan = 0.0;
  double expansion = 0.0;
  bool sorted = true;
  bool conserved = true;
};

/// One (backend, fill) cell: `reps` simulated runs, each verified.  `fill`
/// writes node-local "input" shares; T is the record type.
template <Record T, typename Less>
CellResult run_cell(const BenchOptions& opt, const PerfVector& perf, u64 n,
                    ParallelSortAlgorithm algo,
                    const std::function<void(net::NodeContext&, u64, u64)>& fill,
                    obs::ClusterTrace* trace_out = nullptr) {
  core::ParallelSortConfig psc;
  psc.algorithm = algo;
  psc.sequential.memory_records = scaled_memory(opt) / (sizeof(T) / 4);
  psc.sequential.allow_in_memory = false;
  psc.message_records = 32768 / sizeof(T);

  RunningStats acc;
  CellResult cell;
  for (u32 rep = 0; rep < opt.reps; ++rep) {
    net::ClusterConfig config = paper_cluster(opt);
    config.seed = 900 + rep;
    config.observe = trace_out != nullptr && rep == 0;
    net::Cluster cluster(config);

    struct NodeOut {
      core::ParallelSortReport report;
      bool sorted = true;
    };
    auto outcome = cluster.run([&](net::NodeContext& ctx) -> NodeOut {
      fill(ctx, perf.share_offset(ctx.rank(), n), perf.share(ctx.rank(), n));
      ctx.clock().reset();
      NodeOut out;
      out.report = core::parallel_external_sort<T, Less>(ctx, perf, psc);
      if (out.report.layout == core::OutputLayout::kContiguousSlice) {
        out.sorted = core::verify_global_order<T, Less>(ctx, psc.output);
      } else {
        for (const u64 b : out.report.owned_buckets) {
          out.sorted = out.sorted &&
                       core::is_sorted_file<T, Less>(
                           ctx.disk(), core::bucket_file_name(psc.output, b));
        }
      }
      return out;
    });

    acc.add(outcome.makespan);
    u64 total = 0;
    std::vector<u64> finals;
    for (const NodeOut& out : outcome.results) {
      total += out.report.final_records;
      finals.push_back(out.report.final_records);
      cell.sorted = cell.sorted && out.sorted;
    }
    cell.conserved = cell.conserved && total == n;
    if (rep == 0) {
      cell.expansion =
          metrics::sublist_expansion(std::span<const u64>(finals), perf);
      if (trace_out != nullptr) {
        *trace_out = core::collect_cluster_trace(outcome);
      }
    }
  }
  cell.makespan = acc.mean();
  return cell;
}

void append_json(std::string& json, const Row& r, bool first) {
  if (!first) json += ",\n";
  json += "    {\"backend\": \"" + r.backend + "\", \"scenario\": \"" +
          r.scenario + "\", \"records\": " + std::to_string(r.records) +
          ", \"record_bytes\": " + std::to_string(r.record_bytes) +
          ", \"makespan_s\": " + metrics::TextTable::fmt(r.makespan_s, 6) +
          ", \"expansion\": " + metrics::TextTable::fmt(r.expansion, 4) +
          ", \"sorted\": " + (r.sorted ? "true" : "false") +
          ", \"conserved\": " + (r.conserved ? "true" : "false") + "}";
}

int run(const BenchOptions& opt) {
  PerfVector perf({4, 4, 1, 1});
  const u64 n = perf.round_up_admissible(scaled_pow2(opt, 20));
  const u64 n_wide = perf.round_up_admissible(scaled_pow2(opt, 17));

  // The u32-key scenario matrix: the paper's characteristic inputs plus
  // the splitter-adversarial ones.
  const struct {
    const char* name;
    Dist dist;
  } kScenarios[] = {
      {"uniform", Dist::kUniform},
      {"zero", Dist::kZero},
      {"sorted", Dist::kSorted},
      {"reverse-sorted", Dist::kReverseSorted},
      {"zipf", Dist::kZipf},
      {"duplicates", Dist::kDuplicates},
      {"staggered", Dist::kStaggered},
      {"g-group", Dist::kGGroup},
  };

  heading("Backend head-to-head: " + std::to_string(n) +
          " x u32 (+ " + std::to_string(n_wide) +
          " x 100 B datamation), cluster {4,4,1,1}");
  metrics::TextTable table(
      {"scenario", "backend", "exe time (s)", "expansion", "ok"});

  std::string json;
  bool first = true;
  bool all_ok = true;

  for (const auto& sc : kScenarios) {
    auto fill = [&](net::NodeContext& ctx, u64 offset, u64 count) {
      workload::WorkloadSpec spec;
      spec.dist = sc.dist;
      spec.total_records = n;
      spec.node_count = perf.node_count();
      spec.seed = ctx.config().seed;
      workload::write_share(spec, ctx.rank(), offset, count, ctx.disk(),
                            "input");
    };
    for (const ParallelSortAlgorithm algo : core::kAllAlgorithms) {
      // One representative traced cell for --obs-out: multiway on zipf.
      obs::ClusterTrace trace;
      const bool want_trace =
          !opt.obs_out.empty() &&
          algo == ParallelSortAlgorithm::kExtMultiway &&
          sc.dist == Dist::kZipf;
      const CellResult cell = run_cell<DefaultKey, std::less<DefaultKey>>(
          opt, perf, n, algo, fill, want_trace ? &trace : nullptr);
      if (want_trace) {
        trace.set_meta("tool", "bench_backends");
        trace.set_meta("algorithm", core::to_string(algo));
        trace.set_meta("scenario", sc.name);
        core::write_obs_outputs(trace, opt.obs_out);
      }
      const bool ok = cell.sorted && cell.conserved;
      all_ok = all_ok && ok;
      table.add_row({sc.name, core::to_string(algo),
                     fmt_seconds(cell.makespan),
                     metrics::TextTable::fmt(cell.expansion, 3),
                     ok ? "yes" : "NO"});
      append_json(json,
                  Row{core::to_string(algo), sc.name, n, sizeof(DefaultKey),
                      cell.makespan, cell.expansion, cell.sorted,
                      cell.conserved},
                  first);
      first = false;
    }
  }

  // Wide-payload scenario: 100-byte records, tiny 10-byte keys — the
  // bytes-moved-dominated regime the paper's 4-byte integers never reach.
  {
    auto fill_wide = [&](net::NodeContext& ctx, u64 offset, u64 count) {
      workload::write_datamation(ctx.disk(), "input", ctx.config().seed,
                                 offset, count);
    };
    for (const ParallelSortAlgorithm algo : core::kAllAlgorithms) {
      const CellResult cell = run_cell<DatamationRecord, DatamationLess>(
          opt, perf, n_wide, algo, fill_wide);
      const bool ok = cell.sorted && cell.conserved;
      all_ok = all_ok && ok;
      table.add_row({"datamation-100B", core::to_string(algo),
                     fmt_seconds(cell.makespan),
                     metrics::TextTable::fmt(cell.expansion, 3),
                     ok ? "yes" : "NO"});
      append_json(json,
                  Row{core::to_string(algo), "datamation-100B", n_wide,
                      sizeof(DatamationRecord), cell.makespan, cell.expansion,
                      cell.sorted, cell.conserved},
                  first);
      first = false;
    }
  }

  table.print(std::cout);
  note("every cell is verified before timing is reported: layout-aware "
       "sortedness (contiguous slices vs owned bucket files) and exact "
       "record conservation");
  note("expansion = max_i sublist_i / (n * perf_i / sum perf): 1.0 is a "
       "perfectly perf-proportional split");

  std::filesystem::create_directories("bench_results");
  std::ofstream out("bench_results/BENCH_backends.json");
  out << "{\n  \"bench\": \"backends\",\n  \"cluster\": \"4,4,1,1\",\n"
      << "  \"reps\": " << opt.reps << ",\n  \"rows\": [\n"
      << json << "\n  ]\n}\n";
  out.close();
  note("wrote bench_results/BENCH_backends.json");
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace paladin::bench

int main(int argc, char** argv) {
  return paladin::bench::run(paladin::bench::BenchOptions::parse(argc, argv));
}
