// What the paper's timings leave out (§5: "the execution time does not
// comprise neither the initial distribution of data ... nor the gather
// time"): this bench measures the full job — scatter from one node, sort,
// gather back — and shows how much of the heterogeneous speedup survives
// once staging is included.  Staging is bandwidth-bound through one node's
// link, so it is insensitive to the perf vector and dilutes the gain.
#include <iostream>

#include "base/stats.h"
#include "bench/bench_common.h"
#include "core/ext_psrs.h"
#include "core/scatter_gather.h"
#include "hetero/perf_vector.h"
#include "metrics/table.h"
#include "pdm/typed_io.h"
#include "workload/generators.h"

namespace paladin::bench {
namespace {

using hetero::PerfVector;

struct Phases {
  RunningStats scatter, sort, gather, total;
};

Phases measure(const BenchOptions& opt, const PerfVector& algo_perf, u64 n,
               u64 memory) {
  Phases ph;
  for (u32 rep = 0; rep < opt.reps; ++rep) {
    net::ClusterConfig config = paper_cluster(opt);
    config.seed = 7400 + rep;
    net::Cluster cluster(config);
    workload::WorkloadSpec spec;
    spec.dist = workload::Dist::kUniform;
    spec.total_records = n;
    spec.node_count = 1;
    spec.seed = config.seed;

    struct Times {
      double scatter, sort, gather;
    };
    auto outcome = cluster.run([&](net::NodeContext& ctx) -> Times {
      if (ctx.rank() == 0) {
        workload::write_share(spec, 0, 0, n, ctx.disk(), "all.in");
      }
      ctx.clock().reset();
      core::scatter_shares<DefaultKey>(ctx, algo_perf, "all.in", "input", 0,
                                       8192);
      ctx.comm().barrier();
      const double t1 = ctx.clock().now();

      core::ExtPsrsConfig psrs;
      psrs.sequential.memory_records = memory;
      psrs.sequential.tape_count = 15;
      psrs.sequential.allow_in_memory = false;
      core::ext_psrs_sort<DefaultKey>(ctx, algo_perf, psrs);
      ctx.comm().barrier();
      const double t2 = ctx.clock().now();

      core::gather_shares<DefaultKey>(ctx, "sorted", "all.out", 0, 8192);
      ctx.comm().barrier();
      const double t3 = ctx.clock().now();
      return Times{t1, t2 - t1, t3 - t2};
    });
    double scatter = 0, sort = 0, gather = 0;
    for (const auto& t : outcome.results) {
      scatter = std::max(scatter, t.scatter);
      sort = std::max(sort, t.sort);
      gather = std::max(gather, t.gather);
    }
    ph.scatter.add(scatter);
    ph.sort.add(sort);
    ph.gather.add(gather);
    ph.total.add(outcome.makespan);
  }
  return ph;
}

int run(const BenchOptions& opt) {
  const u64 memory = scaled_memory(opt);
  const u64 base_n = scaled_pow2(opt, 24);

  heading("Staging costs the paper excluded: scatter + sort + gather");
  metrics::TextTable table({"algorithm perf", "scatter (s)", "sort (s)",
                            "gather (s)", "full job (s)"});

  std::vector<double> sort_times, totals;
  for (const auto& algo : {std::vector<u32>{1, 1, 1, 1},
                           std::vector<u32>{4, 4, 1, 1}}) {
    PerfVector perf(algo);
    const u64 n = perf.round_up_admissible(base_n);
    const Phases ph = measure(opt, perf, n, memory);
    table.add_row({perf.to_string(), fmt_seconds(ph.scatter.mean()),
                   fmt_seconds(ph.sort.mean()), fmt_seconds(ph.gather.mean()),
                   fmt_seconds(ph.total.mean())});
    sort_times.push_back(ph.sort.mean());
    totals.push_back(ph.total.mean());
  }
  table.print(std::cout);
  note("sort-only speedup (what the paper reports): " +
       metrics::TextTable::fmt(sort_times[0] / sort_times[1], 2) + "x");
  note("full-job speedup including staging:        " +
       metrics::TextTable::fmt(totals[0] / totals[1], 2) +
       "x — staging moves every record through one node's link twice and "
       "is perf-insensitive, so it dilutes the gain");
  return 0;
}

}  // namespace
}  // namespace paladin::bench

int main(int argc, char** argv) {
  return paladin::bench::run(paladin::bench::BenchOptions::parse(argc, argv));
}
