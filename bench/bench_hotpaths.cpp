// Perf-regression harness for the transfer hot paths: times the read,
// write and merge kernels on a real (posix) disk under the three I/O
// modes — per-record, bulk, and bulk+overlapped — and emits both a text
// table and a machine-readable bench_results/BENCH_hotpaths.json with the
// best-of-reps ns/record per (kernel, mode).  Block-I/O counts and metered
// comparisons are reported per row so a mode that got faster by *doing
// less metered work* (instead of doing the same work faster) shows up
// immediately; the equivalence tests enforce the same invariant
// bit-exactly.  The merge kernels sweep the fan-in (k ∈ {4..256}) and
// include a Zipf-skewed input — the duplicate-heavy regime where the
// gallop path behaves differently from uniform keys.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/meter.h"
#include "base/rng.h"
#include "bench/bench_common.h"
#include "core/merge_files.h"
#include "core/partition_file.h"
#include "metrics/table.h"
#include "net/communicator.h"
#include "pdm/typed_io.h"
#include "seq/kway_merge.h"
#include "seq/loser_tree.h"
#include "seq/run_formation.h"
#include "workload/generators.h"

namespace paladin::bench {
namespace {

struct Row {
  std::string kernel;
  std::string mode;
  u64 records = 0;
  double ns_per_record = 0.0;
  u64 block_ios = 0;
  double compares_per_record = 0.0;
};

struct Mode {
  const char* name;
  bool bulk;
  bool overlapped;
};

constexpr Mode kModes[] = {
    {"per-record", false, false},
    {"bulk", true, false},
    {"overlapped", true, true},
};

pdm::DiskParams mode_params(const Mode& m) {
  pdm::DiskParams p;
  p.bulk_transfers = m.bulk;
  p.io_mode = m.overlapped ? pdm::IoMode::kOverlapped : pdm::IoMode::kSync;
  return p;
}

template <typename F>
double time_seconds(F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::vector<u32> random_keys(u64 n, u64 seed) {
  Xoshiro256 rng(seed);
  std::vector<u32> v(n);
  for (auto& x : v) x = static_cast<u32>(rng.next());
  return v;
}

/// n Zipf-skewed keys (workload::Dist::kZipf): ~1K distinct hash-scattered
/// values with heavy duplicate mass.
std::vector<u32> zipf_keys(u64 n, u64 seed) {
  workload::WorkloadSpec spec;
  spec.dist = workload::Dist::kZipf;
  spec.total_records = n;
  spec.node_count = 1;
  spec.seed = seed;
  return workload::generate_share(spec, 0, 0, n);
}

/// k sorted runs laid back-to-back; `partitioned` makes them a range
/// partition of one sorted sequence (long gallop batches), otherwise the
/// key ranges fully interleave (per-record-sized batches).
struct MergeInput {
  std::vector<u32> records;  ///< runs back-to-back
  seq::RunLayout layout;
};

/// Chunks an (unsorted) key stream into k equal runs and sorts each —
/// fully interleaved key ranges, whatever the key distribution.
MergeInput make_interleaved(std::vector<u32> keys, u64 k) {
  MergeInput in;
  const u64 per_run = keys.size() / k;
  in.layout.total_records = k * per_run;
  in.layout.run_lengths.assign(k, per_run);
  keys.resize(k * per_run);
  for (u64 i = 0; i < k; ++i) {
    std::sort(keys.begin() + static_cast<std::ptrdiff_t>(i * per_run),
              keys.begin() + static_cast<std::ptrdiff_t>((i + 1) * per_run));
  }
  in.records = std::move(keys);
  return in;
}

MergeInput make_merge_input(u64 k, u64 per_run, bool partitioned) {
  if (!partitioned) return make_interleaved(random_keys(k * per_run, 100), k);
  MergeInput in;
  in.layout.total_records = k * per_run;
  in.layout.run_lengths.assign(k, per_run);
  in.records = random_keys(k * per_run, 31);
  std::sort(in.records.begin(), in.records.end());
  return in;
}

/// One timed repetition's outcome.
struct RepResult {
  double seconds = 0.0;
  u64 block_ios = 0;
  u64 compares = 0;
};

/// Persistent network state for the net-merge kernels: the fabric (and its
/// shared buffer pool) lives across repetitions so payload buffers are
/// recycled instead of re-allocated per rep — the allocation noise used to
/// dominate rep-to-rep variance.
struct NetState {
  net::Fabric fabric;
  net::VirtualClock clock;
  std::vector<net::Communicator> comms;

  explicit NetState(u64 k)
      : fabric(static_cast<u32>(k + 1), net::NetworkModel::infinite()) {
    comms.reserve(k + 1);
    for (u32 r = 0; r < k + 1; ++r) comms.emplace_back(fabric, r, clock);
  }
};

int run(const BenchOptions& opt) {
  const u64 n = opt.full ? (u64{1} << 22) : (u64{1} << 20);
  const u64 k = 8;
  const auto data = random_keys(n, 7);

  const std::filesystem::path scratch =
      (opt.workdir.empty() ? std::filesystem::temp_directory_path()
                           : opt.workdir) /
      "paladin_hotpaths";
  std::filesystem::remove_all(scratch);
  std::filesystem::create_directories(scratch);

  heading("Hot-path kernels on a real disk: best-of-reps ns/record per mode");
  metrics::TextTable table({"kernel", "mode", "records", "ns/record",
                            "block IOs", "cmp/rec", "vs per-record"});
  std::vector<Row> rows;

  struct Kernel {
    std::string name;
    std::function<RepResult(const Mode&)> rep;
  };

  const MergeInput presorted = make_merge_input(k, n / k, true);
  const MergeInput interleaved = make_merge_input(k, n / k, false);
  const MergeInput zipf = make_interleaved(zipf_keys(n, 93), k);

  auto disk_for = [&](const Mode& m) {
    return pdm::Disk::posix(scratch, mode_params(m));
  };

  std::vector<Kernel> kernels;
  kernels.push_back({"write", [&](const Mode& m) -> RepResult {
                       pdm::Disk disk = disk_for(m);
                       disk.reset_stats();
                       const double s = time_seconds([&] {
                         pdm::write_file<u32>(disk, "w",
                                              std::span<const u32>(data));
                       });
                       const u64 ios = disk.stats().total_block_ios();
                       disk.remove("w");
                       return {s, ios, 0};
                     }});
  kernels.push_back({"read", [&](const Mode& m) -> RepResult {
                       pdm::Disk disk = disk_for(m);
                       pdm::write_file<u32>(disk, "r",
                                            std::span<const u32>(data));
                       disk.reset_stats();
                       std::vector<u32> back;
                       const double s = time_seconds(
                           [&] { back = pdm::read_file<u32>(disk, "r"); });
                       PALADIN_ASSERT(back.size() == n);
                       const u64 ios = disk.stats().total_block_ios();
                       disk.remove("r");
                       return {s, ios, 0};
                     }});
  // Captures the input by pointer: the MergeInputs outlive the kernel list.
  auto merge_kernel = [&](const MergeInput* in) {
    return [&, in](const Mode& m) -> RepResult {
      const u64 runs = in->layout.run_count();
      pdm::Disk disk = disk_for(m);
      pdm::write_file<u32>(disk, "runs", std::span<const u32>(in->records));
      disk.reset_stats();
      CountingMeter meter;
      u64 merged = 0;
      const double s = time_seconds([&] {
        pdm::BlockFile out = disk.create("merged");
        pdm::BlockWriter<u32> writer(out);
        merged = seq::merge_run_group<u32>(disk, "runs", in->layout, 0, runs,
                                           writer, meter);
        writer.flush();
      });
      PALADIN_ASSERT(merged == in->layout.total_records);
      const u64 ios = disk.stats().total_block_ios();
      disk.remove("runs");
      disk.remove("merged");
      return {s, ios, meter.compares};
    };
  };
  kernels.push_back({"merge-presorted", merge_kernel(&presorted)});
  kernels.push_back({"merge-random", merge_kernel(&interleaved)});
  kernels.push_back({"merge-zipf", merge_kernel(&zipf)});

  // Fan-in sweep: same total volume, k runs of n/k records each.  The
  // tree depth (⌈log2 k⌉ compares per record) and the per-source buffer
  // pressure both scale with k.
  std::vector<std::unique_ptr<MergeInput>> sweep_inputs;
  for (u64 fan : {u64{4}, u64{16}, u64{64}, u64{256}}) {
    sweep_inputs.push_back(std::make_unique<MergeInput>(
        make_interleaved(random_keys(n, 200 + fan), fan)));
    kernels.push_back({"merge-random-k" + std::to_string(fan),
                       merge_kernel(sweep_inputs.back().get())});
  }

  // Pipeline kernels: the two halves the fused steps 3–5 are made of.
  // chunk-emit streams a sorted file through the PartitionStream into
  // block-multiple payload chunks (the send half, minus the wire);
  // net-merge feeds a LoserTree straight from a mailbox full of chunk
  // streams and writes only the final output (the receive half).
  constexpr u64 kChunkRecords = 8192;
  // p−1 evenly spaced pivots over the presorted input.
  std::vector<u32> pivots;
  for (u64 j = 1; j < k; ++j) {
    pivots.push_back(presorted.records[j * (n / k)]);
  }
  kernels.push_back(
      {"chunk-emit", [&](const Mode& m) -> RepResult {
         pdm::Disk disk = disk_for(m);
         pdm::write_file<u32>(disk, "sorted",
                              std::span<const u32>(presorted.records));
         disk.reset_stats();
         CountingMeter meter;
         u64 emitted = 0;
         const double s = time_seconds([&] {
           pdm::BlockFile f = disk.open("sorted");
           pdm::BlockReader<u32> reader(f);
           core::PartitionStream<u32> stream(reader,
                                             std::span<const u32>(pivots),
                                             kChunkRecords, meter);
           std::vector<u8> payload;
           using EventKind = core::PartitionStream<u32>::EventKind;
           for (;;) {
             const auto ev = stream.next(payload);
             if (ev.kind == EventKind::kDone) break;
             emitted += ev.records;
           }
         });
         PALADIN_ASSERT(emitted == n);
         const u64 ios = disk.stats().total_block_ios();
         disk.remove("sorted");
         return {s, ios, meter.compares};
       }});
  // One fabric per net-merge kernel, k sender ranks + rank 0 as the
  // merging receiver, alive across all modes and reps (see NetState).
  // All chunks are pre-delivered (free wire: the kernel times the
  // adopt→merge→write machinery, not the simulated link).
  auto net_merge_kernel = [&](const MergeInput* in,
                              std::shared_ptr<NetState> st) {
    return [&, in, st](const Mode& m) -> RepResult {
      const u64 per_run = n / k;
      for (u64 run = 0; run < k; ++run) {
        const u32* base = in->records.data() + run * per_run;
        for (u64 off = 0; off < per_run; off += kChunkRecords) {
          const u64 take = std::min<u64>(kChunkRecords, per_run - off);
          // Recycled from the fabric pool: the merge released last rep's
          // payloads there as it consumed them.
          std::vector<u8> payload = st->comms[run + 1].pool().acquire();
          payload.resize(take * sizeof(u32));
          std::memcpy(payload.data(), base + off, payload.size());
          st->comms[run + 1].isend_payload(st->clock, 0, 1,
                                           std::move(payload));
        }
        st->comms[run + 1].isend_payload(st->clock, 0, 1, {});  // EOS
      }
      pdm::Disk disk = disk_for(m);
      disk.reset_stats();
      CountingMeter meter;
      u64 merged = 0;
      const double s = time_seconds([&] {
        std::vector<core::NetworkRunSource<u32>> net_sources;
        net_sources.reserve(k);
        for (u32 r = 0; r < k; ++r) {
          net_sources.emplace_back(st->comms[0], st->clock, r + 1, 1, 2,
                                   nullptr);
        }
        std::vector<core::NetworkRunSource<u32>*> sources;
        for (auto& src : net_sources) sources.push_back(&src);
        pdm::BlockFile out = disk.create("merged");
        pdm::BlockWriter<u32> writer(out);
        seq::LoserTree<u32, core::NetworkRunSource<u32>> tree(
            std::move(sources), std::less<u32>(), &meter);
        if (m.bulk) {
          merged = tree.pop_run_into(writer);
        } else {
          while (const u32* top = tree.peek()) {
            writer.push(*top);
            tree.pop_discard();
            ++merged;
          }
        }
        writer.flush();
      });
      PALADIN_ASSERT(merged == in->layout.total_records);
      // Drain the per-chunk acks out of the sender mailboxes so they do
      // not accumulate across reps.
      for (u64 run = 0; run < k; ++run) {
        while (st->comms[run + 1].try_recv_packet_on(st->clock, 0, 2)) {
        }
      }
      const u64 ios = disk.stats().total_block_ios();
      disk.remove("merged");
      return {s, ios, meter.compares};
    };
  };
  kernels.push_back(
      {"net-merge", net_merge_kernel(&interleaved, std::make_shared<NetState>(k))});
  kernels.push_back(
      {"net-merge-zipf", net_merge_kernel(&zipf, std::make_shared<NetState>(k))});

  for (const Kernel& kernel : kernels) {
    double base_ns = 0.0;
    for (const Mode& mode : kModes) {
      std::vector<double> samples;
      u64 ios = 0;
      u64 compares = 0;
      kernel.rep(mode);  // warm-up (page cache, executor spin-up)
      for (u32 r = 0; r < opt.reps; ++r) {
        const RepResult res = kernel.rep(mode);
        samples.push_back(res.seconds);
        ios = res.block_ios;
        compares = res.compares;
      }
      // Best-of-reps: transient scheduler noise only ever adds time, so the
      // minimum is the stable estimate the regression gate diffs against.
      const double ns = *std::min_element(samples.begin(), samples.end()) *
                        1e9 / static_cast<double>(n);
      const double cpr = static_cast<double>(compares) / static_cast<double>(n);
      if (std::string(mode.name) == "per-record") base_ns = ns;
      rows.push_back({kernel.name, mode.name, n, ns, ios, cpr});
      table.add_row({kernel.name, mode.name, std::to_string(n),
                     metrics::TextTable::fmt(ns, 2), std::to_string(ios),
                     metrics::TextTable::fmt(cpr, 2),
                     metrics::TextTable::fmt(base_ns / ns, 2) + "x"});
    }
  }
  table.print(std::cout);
  note("block-I/O and compare counts must match across the modes of each "
       "kernel: the fast paths change wall-clock only, never the metered "
       "work (enforced bit-exactly by test_io_equivalence and "
       "test_merge_kernels)");

  std::filesystem::create_directories("bench_results");
  std::ofstream json("bench_results/BENCH_hotpaths.json");
  json << "{\n  \"bench\": \"hotpaths\",\n"
       << "  \"records\": " << n << ",\n  \"reps\": " << opt.reps << ",\n"
       << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << "    {\"kernel\": \"" << r.kernel << "\", \"mode\": \"" << r.mode
         << "\", \"records\": " << r.records << ", \"ns_per_record\": "
         << r.ns_per_record << ", \"block_ios\": " << r.block_ios
         << ", \"compares_per_record\": " << r.compares_per_record << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  json.close();
  note("wrote bench_results/BENCH_hotpaths.json");

  std::filesystem::remove_all(scratch);
  return 0;
}

}  // namespace
}  // namespace paladin::bench

int main(int argc, char** argv) {
  return paladin::bench::run(paladin::bench::BenchOptions::parse(argc, argv));
}
