// Perf-regression harness for the transfer hot paths: times the read,
// write and merge kernels on a real (posix) disk under the three I/O
// modes — per-record, bulk, and bulk+overlapped — and emits both a text
// table and a machine-readable bench_results/BENCH_hotpaths.json with the
// median ns/record per (kernel, mode).  Block-I/O counts are reported per
// row so a mode that got faster by *doing less metered work* (instead of
// doing the same work faster) shows up immediately; the equivalence tests
// enforce the same invariant bit-exactly.
#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "base/meter.h"
#include "base/rng.h"
#include "bench/bench_common.h"
#include "core/merge_files.h"
#include "core/partition_file.h"
#include "metrics/table.h"
#include "net/communicator.h"
#include "pdm/typed_io.h"
#include "seq/kway_merge.h"
#include "seq/loser_tree.h"
#include "seq/run_formation.h"

namespace paladin::bench {
namespace {

struct Row {
  std::string kernel;
  std::string mode;
  u64 records = 0;
  double ns_per_record = 0.0;
  u64 block_ios = 0;
};

struct Mode {
  const char* name;
  bool bulk;
  bool overlapped;
};

constexpr Mode kModes[] = {
    {"per-record", false, false},
    {"bulk", true, false},
    {"overlapped", true, true},
};

pdm::DiskParams mode_params(const Mode& m) {
  pdm::DiskParams p;
  p.bulk_transfers = m.bulk;
  p.io_mode = m.overlapped ? pdm::IoMode::kOverlapped : pdm::IoMode::kSync;
  return p;
}

template <typename F>
double time_seconds(F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2.0;
}

std::vector<u32> random_keys(u64 n, u64 seed) {
  Xoshiro256 rng(seed);
  std::vector<u32> v(n);
  for (auto& x : v) x = static_cast<u32>(rng.next());
  return v;
}

/// k sorted runs laid back-to-back; `partitioned` makes them a range
/// partition of one sorted sequence (long gallop batches), otherwise the
/// key ranges fully interleave (per-record-sized batches).
struct MergeInput {
  std::vector<u32> records;  ///< runs back-to-back
  seq::RunLayout layout;
};

MergeInput make_merge_input(u64 k, u64 per_run, bool partitioned) {
  MergeInput in;
  in.layout.total_records = k * per_run;
  in.layout.run_lengths.assign(k, per_run);
  if (partitioned) {
    in.records = random_keys(k * per_run, 31);
    std::sort(in.records.begin(), in.records.end());
  } else {
    in.records.reserve(k * per_run);
    for (u64 i = 0; i < k; ++i) {
      auto run = random_keys(per_run, 100 + i);
      std::sort(run.begin(), run.end());
      in.records.insert(in.records.end(), run.begin(), run.end());
    }
  }
  return in;
}

int run(const BenchOptions& opt) {
  const u64 n = opt.full ? (u64{1} << 22) : (u64{1} << 20);
  const u64 k = 8;
  const auto data = random_keys(n, 7);

  const std::filesystem::path scratch =
      (opt.workdir.empty() ? std::filesystem::temp_directory_path()
                           : opt.workdir) /
      "paladin_hotpaths";
  std::filesystem::remove_all(scratch);
  std::filesystem::create_directories(scratch);

  heading("Hot-path kernels on a real disk: median ns/record per I/O mode");
  metrics::TextTable table(
      {"kernel", "mode", "records", "ns/record", "block IOs", "vs per-record"});
  std::vector<Row> rows;

  struct Kernel {
    std::string name;
    // Returns (seconds, block IOs) for one timed repetition.
    std::function<std::pair<double, u64>(const Mode&)> rep;
  };

  const MergeInput presorted = make_merge_input(k, n / k, true);
  const MergeInput interleaved = make_merge_input(k, n / k, false);

  auto disk_for = [&](const Mode& m) {
    return pdm::Disk::posix(scratch, mode_params(m));
  };

  std::vector<Kernel> kernels;
  kernels.push_back(
      {"write", [&](const Mode& m) -> std::pair<double, u64> {
         pdm::Disk disk = disk_for(m);
         disk.reset_stats();
         const double s = time_seconds([&] {
           pdm::write_file<u32>(disk, "w", std::span<const u32>(data));
         });
         const u64 ios = disk.stats().total_block_ios();
         disk.remove("w");
         return {s, ios};
       }});
  kernels.push_back(
      {"read", [&](const Mode& m) -> std::pair<double, u64> {
         pdm::Disk disk = disk_for(m);
         pdm::write_file<u32>(disk, "r", std::span<const u32>(data));
         disk.reset_stats();
         std::vector<u32> back;
         const double s =
             time_seconds([&] { back = pdm::read_file<u32>(disk, "r"); });
         PALADIN_ASSERT(back.size() == n);
         const u64 ios = disk.stats().total_block_ios();
         disk.remove("r");
         return {s, ios};
       }});
  auto merge_kernel = [&](const MergeInput& in) {
    return [&](const Mode& m) -> std::pair<double, u64> {
      pdm::Disk disk = disk_for(m);
      pdm::write_file<u32>(disk, "runs", std::span<const u32>(in.records));
      disk.reset_stats();
      NullMeter meter;
      u64 merged = 0;
      const double s = time_seconds([&] {
        pdm::BlockFile out = disk.create("merged");
        pdm::BlockWriter<u32> writer(out);
        merged = seq::merge_run_group<u32>(disk, "runs", in.layout, 0, k,
                                           writer, meter);
        writer.flush();
      });
      PALADIN_ASSERT(merged == in.layout.total_records);
      const u64 ios = disk.stats().total_block_ios();
      disk.remove("runs");
      disk.remove("merged");
      return {s, ios};
    };
  };
  kernels.push_back({"merge-presorted", merge_kernel(presorted)});
  kernels.push_back({"merge-random", merge_kernel(interleaved)});

  // Pipeline kernels: the two halves the fused steps 3–5 are made of.
  // chunk-emit streams a sorted file through the PartitionStream into
  // block-multiple payload chunks (the send half, minus the wire);
  // net-merge feeds a LoserTree straight from a mailbox full of chunk
  // streams and writes only the final output (the receive half).
  constexpr u64 kChunkRecords = 8192;
  // p−1 evenly spaced pivots over the presorted input.
  std::vector<u32> pivots;
  for (u64 j = 1; j < k; ++j) {
    pivots.push_back(presorted.records[j * (n / k)]);
  }
  kernels.push_back(
      {"chunk-emit", [&](const Mode& m) -> std::pair<double, u64> {
         pdm::Disk disk = disk_for(m);
         pdm::write_file<u32>(disk, "sorted",
                              std::span<const u32>(presorted.records));
         disk.reset_stats();
         NullMeter meter;
         u64 emitted = 0;
         const double s = time_seconds([&] {
           pdm::BlockFile f = disk.open("sorted");
           pdm::BlockReader<u32> reader(f);
           core::PartitionStream<u32> stream(reader,
                                             std::span<const u32>(pivots),
                                             kChunkRecords, meter);
           std::vector<u8> payload;
           using EventKind = core::PartitionStream<u32>::EventKind;
           for (;;) {
             const auto ev = stream.next(payload);
             if (ev.kind == EventKind::kDone) break;
             emitted += ev.records;
           }
         });
         PALADIN_ASSERT(emitted == n);
         const u64 ios = disk.stats().total_block_ios();
         disk.remove("sorted");
         return {s, ios};
       }});
  kernels.push_back(
      {"net-merge", [&](const Mode& m) -> std::pair<double, u64> {
         // One fabric, k sender ranks + rank 0 as the merging receiver.
         // All chunks are pre-delivered (free wire: the kernel times the
         // adopt→merge→write machinery, not the simulated link).
         net::Fabric fabric(static_cast<u32>(k + 1), net::NetworkModel::infinite());
         net::VirtualClock clock;
         std::vector<net::Communicator> comms;
         for (u32 r = 0; r < k + 1; ++r) comms.emplace_back(fabric, r, clock);
         for (u64 run = 0; run < k; ++run) {
           const u32* base = interleaved.records.data() + run * (n / k);
           for (u64 off = 0; off < n / k; off += kChunkRecords) {
             const u64 take = std::min<u64>(kChunkRecords, n / k - off);
             std::vector<u8> payload(take * sizeof(u32));
             std::memcpy(payload.data(), base + off, payload.size());
             comms[run + 1].isend_payload(clock, 0, 1, std::move(payload));
           }
           comms[run + 1].isend_payload(clock, 0, 1, {});  // end-of-stream
         }
         pdm::Disk disk = disk_for(m);
         disk.reset_stats();
         NullMeter meter;
         u64 merged = 0;
         const double s = time_seconds([&] {
           std::vector<core::NetworkRunSource<u32>> net_sources;
           net_sources.reserve(k);
           for (u32 r = 0; r < k; ++r) {
             net_sources.emplace_back(comms[0], clock, r + 1, 1, 2, nullptr);
           }
           std::vector<core::NetworkRunSource<u32>*> sources;
           for (auto& src : net_sources) sources.push_back(&src);
           pdm::BlockFile out = disk.create("merged");
           pdm::BlockWriter<u32> writer(out);
           seq::LoserTree<u32, core::NetworkRunSource<u32>> tree(
               std::move(sources), std::less<u32>(), &meter);
           if (m.bulk) {
             merged = tree.pop_run_into(writer);
           } else {
             while (const u32* top = tree.peek()) {
               writer.push(*top);
               tree.pop_discard();
               ++merged;
             }
           }
           writer.flush();
         });
         PALADIN_ASSERT(merged == n);
         const u64 ios = disk.stats().total_block_ios();
         disk.remove("merged");
         return {s, ios};
       }});

  for (const Kernel& kernel : kernels) {
    double base_ns = 0.0;
    for (const Mode& mode : kModes) {
      std::vector<double> samples;
      u64 ios = 0;
      kernel.rep(mode);  // warm-up (page cache, executor spin-up)
      for (u32 r = 0; r < opt.reps; ++r) {
        const auto [s, rep_ios] = kernel.rep(mode);
        samples.push_back(s);
        ios = rep_ios;
      }
      const double ns = median(samples) * 1e9 / static_cast<double>(n);
      if (std::string(mode.name) == "per-record") base_ns = ns;
      rows.push_back({kernel.name, mode.name, n, ns, ios});
      table.add_row({kernel.name, mode.name, std::to_string(n),
                     metrics::TextTable::fmt(ns, 2), std::to_string(ios),
                     metrics::TextTable::fmt(base_ns / ns, 2) + "x"});
    }
  }
  table.print(std::cout);
  note("block-I/O counts must match across the modes of each kernel: the "
       "fast paths change wall-clock only, never the metered transfer "
       "volume (enforced bit-exactly by test_io_equivalence)");

  std::filesystem::create_directories("bench_results");
  std::ofstream json("bench_results/BENCH_hotpaths.json");
  json << "{\n  \"bench\": \"hotpaths\",\n"
       << "  \"records\": " << n << ",\n  \"reps\": " << opt.reps << ",\n"
       << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << "    {\"kernel\": \"" << r.kernel << "\", \"mode\": \"" << r.mode
         << "\", \"records\": " << r.records << ", \"ns_per_record\": "
         << r.ns_per_record << ", \"block_ios\": " << r.block_ios << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  json.close();
  note("wrote bench_results/BENCH_hotpaths.json");

  std::filesystem::remove_all(scratch);
  return 0;
}

}  // namespace
}  // namespace paladin::bench

int main(int argc, char** argv) {
  return paladin::bench::run(paladin::bench::BenchOptions::parse(argc, argv));
}
