// Speed drift vs adaptive repartitioning, quantified: on four equal
// simulated nodes, a seeded drift plan forces a 4× slowdown of node 0
// just before it finishes PSRS step 1 — so the damage lands in steps 2–5,
// exactly the region adaptive repartitioning can rebalance.  Three runs:
//
//   baseline   no drift            (the floor)
//   static     drift, perf frozen  (the damage)
//   adaptive   drift + re-estimate (the recovery)
//
// The headline number is the recovery factor
//   (makespan_static − makespan_baseline) / (makespan_adaptive − baseline)
// and the claim is *asserted*, not just reported: adaptive must recover at
// least 2× of the damage the slowdown inflicts on static-perf PSRS, and
// every run must still verify.  Machine-readable results land in
// bench_results/BENCH_drift.json; tools/check_perf_regression.py --drift
// gates the recovery factor in CI.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/ext_psrs.h"
#include "core/verify.h"
#include "hetero/drift.h"
#include "hetero/perf_vector.h"
#include "metrics/table.h"
#include "workload/generators.h"

namespace paladin::bench {
namespace {

constexpr double kSlowFactor = 4.0;
constexpr double kRecoveryTarget = 2.0;

struct DriftRunResult {
  double makespan = 0.0;
  double t_seq_sort0 = 0.0;  ///< rank 0's step-1 duration
  bool ok = true;
};

DriftRunResult run_psrs(const BenchOptions& opt,
                        const hetero::DriftPlan& plan, bool adaptive,
                        u64 records) {
  const std::vector<u32> perf_values(4, 1);
  hetero::PerfVector perf(perf_values);
  const u64 n = perf.round_up_admissible(records);

  net::ClusterConfig config = paper_cluster(opt);
  config.perf = perf_values;
  config.seed = 2026;
  config.drift_plan = plan;
  net::Cluster cluster(config);

  workload::WorkloadSpec spec;
  spec.dist = workload::Dist::kUniform;
  spec.total_records = n;
  spec.node_count = perf.node_count();
  spec.seed = 0xd41f;

  auto outcome = cluster.run([&](net::NodeContext& ctx) {
    workload::write_share(spec, ctx.rank(), perf.share_offset(ctx.rank(), n),
                          perf.share(ctx.rank(), n), ctx.disk(), "input");
    core::ExtPsrsConfig pc;
    // A genuinely out-of-core budget (3 blocks): the step-5 merge of p
    // runs goes multi-pass, so the slice-proportional work the re-split
    // can shrink dominates the fixed read-partition-send work it cannot.
    pc.sequential.memory_records =
        3 * ctx.disk().params().records_per_block(sizeof(DefaultKey));
    pc.sequential.allow_in_memory = false;
    pc.message_records = 8192;
    pc.adaptive.enabled = adaptive;
    // Phased steps 3–5: in the fused pipeline the slow node's critical
    // path is its slice-independent send pass, which repartitioning
    // cannot shrink — the phased merge is where the re-split pays.
    pc.pipelined = false;
    // Binary-search partition boundaries (all three runs): Step 3 is
    // fixed work the re-split cannot shed, so the record-at-a-time
    // comparison bill would sit on the slowed node's critical path in
    // static and adaptive runs alike.
    pc.partition_boundary_seek = true;
    const core::ExtPsrsReport report =
        core::ext_psrs_sort<DefaultKey>(ctx, perf, pc);
    struct R {
      core::ExtPsrsReport rep;
      bool ok;
    };
    return R{report, core::verify_global_order<DefaultKey>(ctx, pc.output)};
  });

  DriftRunResult r;
  r.makespan = outcome.makespan;
  r.t_seq_sort0 = outcome.results[0].rep.t_seq_sort;
  for (auto& nr : outcome.results) r.ok = r.ok && nr.ok;
  if (std::getenv("PALADIN_BENCH_DRIFT_DEBUG") != nullptr) {
    std::cerr << "  [debug] adaptive=" << adaptive << "\n";
    for (u32 i = 0; i < outcome.results.size(); ++i) {
      const auto& rep = outcome.results[i].rep;
      std::cerr << "  [debug] node " << i << " seq=" << rep.t_seq_sort
                << " sample=" << rep.t_sampling << " part=" << rep.t_partition
                << " redist=" << rep.t_redistribute
                << " merge=" << rep.t_final_merge
                << " out=" << rep.final_records << "\n";
    }
  }
  return r;
}

void append_row(std::string& json, const char* mode, double makespan,
                double damage, bool ok, bool first) {
  if (!first) json += ",\n";
  json += "    {\"mode\": \"" + std::string(mode) +
          "\", \"makespan_s\": " + metrics::TextTable::fmt(makespan, 6) +
          ", \"damage_s\": " + metrics::TextTable::fmt(damage, 6) +
          ", \"ok\": " + (ok ? "true" : "false") + "}";
}

int run(const BenchOptions& opt) {
  const u64 records = scaled_pow2(opt, 21);

  heading("Speed drift: forced " +
          metrics::TextTable::fmt(kSlowFactor, 0) +
          "x slowdown of node 0 near the end of step 1, cluster {1,1,1,1}, " +
          std::to_string(records) + " records");

  // Baseline pins both the floor and the place to put the slowdown: the
  // forced window opens at ~97% of rank 0's step-1 duration, so step 1 is
  // almost free of it and steps 2–5 carry the full 4×.
  const DriftRunResult baseline =
      run_psrs(opt, hetero::DriftPlan{}, /*adaptive=*/false, records);

  hetero::DriftPlan plan;
  plan.spec.epoch_seconds = baseline.t_seq_sort0 / 256.0;
  hetero::ForcedSlowdown forced;
  forced.rank = 0;
  forced.from_epoch = 248;  // ≈ 0.97 · t_seq_sort, until stays unbounded
  forced.factor = kSlowFactor;
  plan.forced.push_back(forced);

  const DriftRunResult st = run_psrs(opt, plan, /*adaptive=*/false, records);
  const DriftRunResult ad = run_psrs(opt, plan, /*adaptive=*/true, records);

  const double damage_static = st.makespan - baseline.makespan;
  const double damage_adaptive = ad.makespan - baseline.makespan;
  // Adaptive recovering *everything* (or more) shows up as a zero or
  // negative residual; clamp the denominator so the factor stays finite.
  const double recovery_factor =
      damage_static / std::max(damage_adaptive, 1e-9);

  metrics::TextTable table({"mode", "makespan (s)", "damage (s)", "ok"});
  table.add_row({"baseline", fmt_seconds(baseline.makespan), "-",
                 baseline.ok ? "yes" : "NO"});
  table.add_row({"static", fmt_seconds(st.makespan),
                 fmt_seconds(damage_static), st.ok ? "yes" : "NO"});
  table.add_row({"adaptive", fmt_seconds(ad.makespan),
                 fmt_seconds(damage_adaptive), ad.ok ? "yes" : "NO"});
  table.print(std::cout);

  bool ok = baseline.ok && st.ok && ad.ok;
  if (damage_static <= 0.0) {
    note("DRIFT FAILURE: the forced slowdown inflicted no damage on the "
         "static run — the plan missed the makespan path");
    ok = false;
  }
  if (recovery_factor >= kRecoveryTarget) {
    note("recovery: adaptive keeps " + fmt_seconds(damage_adaptive) +
         " s of the " + fmt_seconds(damage_static) +
         " s static damage -- recovery factor " +
         metrics::TextTable::fmt(recovery_factor, 2) + "x (target >= " +
         metrics::TextTable::fmt(kRecoveryTarget, 0) + "x)");
  } else {
    note("RECOVERY FAILURE: factor " +
         metrics::TextTable::fmt(recovery_factor, 2) + "x below the " +
         metrics::TextTable::fmt(kRecoveryTarget, 0) + "x target");
    ok = false;
  }

  std::filesystem::create_directories("bench_results");
  std::ofstream out("bench_results/BENCH_drift.json");
  out << "{\n  \"bench\": \"drift\",\n  \"cluster\": \"1,1,1,1\",\n"
      << "  \"records\": " << records << ",\n  \"slow_factor\": "
      << metrics::TextTable::fmt(kSlowFactor, 1) << ",\n"
      << "  \"recovery_factor\": "
      << metrics::TextTable::fmt(recovery_factor, 4) << ",\n"
      << "  \"recovery_ok\": " << (ok ? "true" : "false") << ",\n"
      << "  \"rows\": [\n";
  std::string json;
  append_row(json, "baseline", baseline.makespan, 0.0, baseline.ok, true);
  append_row(json, "static", st.makespan, damage_static, st.ok, false);
  append_row(json, "adaptive", ad.makespan, damage_adaptive, ad.ok, false);
  out << json << "\n  ]\n}\n";
  out.close();
  note("wrote bench_results/BENCH_drift.json");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace paladin::bench

int main(int argc, char** argv) {
  return paladin::bench::run(paladin::bench::BenchOptions::parse(argc, argv));
}
