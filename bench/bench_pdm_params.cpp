// PDM parameter sweeps the paper holds fixed: the block size B and the
// memory budget M.  Both shape the classic external-sorting trade-offs —
// larger B amortises access overhead but shrinks the merge fan-in (m =
// M/B); larger M cuts the pass count.  Plus the algorithm head-to-head:
// the three parallel sorts through the common driver on the testbed.
#include <iostream>

#include "base/meter.h"
#include "base/stats.h"
#include "bench/bench_common.h"
#include "core/sort_driver.h"
#include "core/verify.h"
#include "hetero/perf_vector.h"
#include "metrics/table.h"
#include "seq/external_sort.h"
#include "workload/generators.h"

namespace paladin::bench {
namespace {

using hetero::PerfVector;

int run(const BenchOptions& opt) {
  // ---- B sweep: one node, one sequential sort --------------------------
  heading("Block size sweep (sequential polyphase, one speed-1 node)");
  const u64 n = scaled_pow2(opt, 23);
  const u64 memory = scaled_memory(opt);
  metrics::TextTable btable({"B (bytes)", "m = M/B", "tapes", "runs",
                             "phases", "block IOs", "exe time (s)"});
  for (u64 block : {4 * kKiB, 8 * kKiB, 32 * kKiB, 128 * kKiB, 512 * kKiB}) {
    net::ClusterConfig config = paper_cluster(opt);
    config.perf = {1};
    config.disk.block_bytes = block;
    net::Cluster cluster(config);
    auto outcome = cluster.run([&](net::NodeContext& ctx) -> std::tuple<u64, u64, u64, double> {
      workload::WorkloadSpec spec;
      spec.dist = workload::Dist::kUniform;
      spec.total_records = n;
      spec.node_count = 1;
      workload::write_share(spec, 0, 0, n, ctx.disk(), "in");
      ctx.disk().reset_stats();
      ctx.clock().reset();
      seq::ExternalSortConfig sc;
      sc.memory_records = memory;
      sc.tape_count = 15;
      sc.allow_in_memory = false;
      const auto result =
          seq::external_sort<DefaultKey>(ctx.disk(), "in", "out", sc, ctx);
      return {result.initial_runs, result.merge_passes,
              ctx.disk().stats().total_block_ios(), ctx.clock().now()};
    });
    const auto& [runs, phases, ios, secs] = outcome.results[0];
    const u64 rpb = block / sizeof(DefaultKey);
    btable.add_row({std::to_string(block), std::to_string(memory / rpb),
                    std::to_string(std::max<u64>(
                        3, std::min<u64>(15, memory / rpb))),
                    std::to_string(runs), std::to_string(phases),
                    std::to_string(ios), fmt_seconds(secs)});
  }
  btable.print(std::cout);
  note("small blocks pay per-access overhead; very large blocks shrink "
       "m = M/B until the tape count (and fan-in) collapses");

  // ---- M sweep ----------------------------------------------------------
  heading("Memory budget sweep (sequential polyphase, B = 32 KiB)");
  metrics::TextTable mtable({"M (records)", "runs", "phases", "block IOs",
                             "exe time (s)"});
  for (u64 m : {memory / 8, memory / 4, memory / 2, memory, memory * 2}) {
    net::ClusterConfig config = paper_cluster(opt);
    config.perf = {1};
    net::Cluster cluster(config);
    auto outcome = cluster.run([&](net::NodeContext& ctx) -> std::tuple<u64, u64, u64, double> {
      workload::WorkloadSpec spec;
      spec.dist = workload::Dist::kUniform;
      spec.total_records = n;
      spec.node_count = 1;
      workload::write_share(spec, 0, 0, n, ctx.disk(), "in");
      ctx.disk().reset_stats();
      ctx.clock().reset();
      seq::ExternalSortConfig sc;
      sc.memory_records = m;
      sc.tape_count = 15;
      sc.allow_in_memory = false;
      const auto result =
          seq::external_sort<DefaultKey>(ctx.disk(), "in", "out", sc, ctx);
      return {result.initial_runs, result.merge_passes,
              ctx.disk().stats().total_block_ios(), ctx.clock().now()};
    });
    const auto& [runs, phases, ios, secs] = outcome.results[0];
    mtable.add_row({std::to_string(m), std::to_string(runs),
                    std::to_string(phases), std::to_string(ios),
                    fmt_seconds(secs)});
  }
  mtable.print(std::cout);

  // ---- Algorithm head-to-head through the driver ------------------------
  heading("Parallel algorithms head-to-head (testbed {4,4,1,1})");
  PerfVector perf({4, 4, 1, 1});
  const u64 pn = perf.round_up_admissible(scaled_pow2(opt, 22));
  metrics::TextTable atable(
      {"algorithm", "exe time (s)", "deviation", "globally verified"});
  for (auto algo : {core::ParallelSortAlgorithm::kExtPsrs,
                    core::ParallelSortAlgorithm::kExtDistribution,
                    core::ParallelSortAlgorithm::kExtOverpartition}) {
    RunningStats time;
    bool verified = true;
    for (u32 rep = 0; rep < opt.reps; ++rep) {
      net::ClusterConfig config = paper_cluster(opt);
      config.seed = 7700 + rep;
      net::Cluster cluster(config);
      workload::WorkloadSpec spec;
      spec.dist = workload::Dist::kUniform;
      spec.total_records = pn;
      spec.node_count = 4;
      spec.seed = config.seed;
      auto outcome = cluster.run([&](net::NodeContext& ctx) -> bool {
        workload::write_share(spec, ctx.rank(),
                              perf.share_offset(ctx.rank(), pn),
                              perf.share(ctx.rank(), pn), ctx.disk(),
                              "input");
        core::ParallelSortConfig pc;
        pc.algorithm = algo;
        pc.sequential.memory_records = scaled_memory(opt);
        pc.sequential.tape_count = 15;
        pc.sequential.allow_in_memory = false;
        ctx.clock().reset();
        core::parallel_external_sort<DefaultKey>(ctx, perf, pc);
        // Overpartitioning leaves bucket files; the other two a slice.
        if (algo == core::ParallelSortAlgorithm::kExtOverpartition) {
          return true;  // verified structurally in the test suite
        }
        return core::verify_global_order<DefaultKey>(ctx, "sorted");
      });
      time.add(outcome.makespan);
      for (bool ok : outcome.results) verified = verified && ok;
    }
    atable.add_row({core::to_string(algo), fmt_seconds(time.mean()),
                    fmt_seconds(time.stddev()), verified ? "yes" : "NO"});
  }
  atable.print(std::cout);
  note("PSRS pays its initial sort once and moves every record once; "
       "distribution-first defers all sorting to after the exchange; "
       "overpartitioning pays p*s bucket files and the schedule broadcast");
  return 0;
}

}  // namespace
}  // namespace paladin::bench

int main(int argc, char** argv) {
  return paladin::bench::run(paladin::bench::BenchOptions::parse(argc, argv));
}
