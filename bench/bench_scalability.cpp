// Speedup and mismatch study around the paper's §5 gains: the paper
// reports a gain of 3 on 4 homogeneous nodes, and on the heterogeneous
// cluster a gain of 1.37 against the *fastest* node's sequential time and
// 6.13 against the slowest.  This bench sweeps the cluster size for the
// homogeneous case, reproduces the heterogeneous gain arithmetic, and adds
// the mismatch ablation from DESIGN.md: what happens when the perf vector
// handed to the algorithm disagrees with the machine.
#include <iostream>

#include "base/stats.h"
#include "bench/bench_common.h"
#include "core/ext_psrs.h"
#include "hetero/perf_vector.h"
#include "metrics/table.h"
#include "pdm/typed_io.h"
#include "seq/external_sort.h"
#include "workload/generators.h"

namespace paladin::bench {
namespace {

using hetero::PerfVector;

struct Measured {
  double parallel = 0;   // ext-PSRS makespan
  double seq_fast = 0;   // sequential sort of n on the fastest node class
  double seq_slow = 0;   // ... on the slowest
};

Measured measure(const BenchOptions& opt, const std::vector<u32>& machine,
                 const std::vector<u32>& algo, u64 n, u64 memory) {
  PerfVector algo_perf(algo);
  Measured out;
  RunningStats par;
  for (u32 rep = 0; rep < opt.reps; ++rep) {
    net::ClusterConfig config = paper_cluster(opt);
    config.perf = machine;
    config.seed = 40 + rep;
    net::Cluster cluster(config);
    workload::WorkloadSpec spec;
    spec.dist = workload::Dist::kUniform;
    spec.total_records = n;
    spec.node_count = static_cast<u32>(machine.size());
    spec.seed = config.seed;
    auto outcome = cluster.run([&](net::NodeContext& ctx) -> int {
      workload::write_share(spec, ctx.rank(),
                            algo_perf.share_offset(ctx.rank(), n),
                            algo_perf.share(ctx.rank(), n), ctx.disk(),
                            "input");
      core::ExtPsrsConfig psrs;
      psrs.sequential.memory_records = memory;
      psrs.sequential.tape_count = 15;
      psrs.sequential.allow_in_memory = false;
      ctx.clock().reset();
      core::ext_psrs_sort<DefaultKey>(ctx, algo_perf, psrs);
      return 0;
    });
    par.add(outcome.makespan);
  }
  out.parallel = par.mean();

  // Sequential reference: the whole dataset on one node of each speed.
  u32 fastest = 0, slowest = 0;
  for (u32 v : machine) {
    fastest = std::max(fastest, v);
    slowest = slowest == 0 ? v : std::min(slowest, v);
  }
  for (u32 speed : {fastest, slowest}) {
    net::ClusterConfig config = paper_cluster(opt);
    config.perf = {speed};
    net::Cluster cluster(config);
    workload::WorkloadSpec spec;
    spec.dist = workload::Dist::kUniform;
    spec.total_records = n;
    spec.node_count = 1;
    spec.seed = 77;
    auto outcome = cluster.run([&](net::NodeContext& ctx) -> double {
      workload::write_share(spec, 0, 0, n, ctx.disk(), "input");
      seq::ExternalSortConfig sc;
      sc.memory_records = memory;
      sc.tape_count = 15;
      sc.allow_in_memory = false;
      ctx.clock().reset();
      seq::external_sort<DefaultKey>(ctx.disk(), "input", "out", sc, ctx);
      return ctx.clock().now();
    });
    (speed == fastest ? out.seq_fast : out.seq_slow) = outcome.results[0];
  }
  return out;
}

int run(const BenchOptions& opt) {
  const u64 memory = scaled_memory(opt);
  const u64 base_n = scaled_pow2(opt, 24);

  heading("Homogeneous speedup vs cluster size (paper: gain 3 at p=4)");
  metrics::TextTable stable({"p", "n", "parallel (s)", "sequential (s)",
                             "speedup", "efficiency"});
  for (u32 p : {2u, 4u, 8u, 16u}) {
    std::vector<u32> machine(p, 1);
    PerfVector perf(machine);
    const u64 n = perf.round_up_admissible(base_n);
    const Measured m = measure(opt, machine, machine, n, memory);
    const double speedup = m.seq_fast / m.parallel;
    stable.add_row({std::to_string(p), std::to_string(n),
                    fmt_seconds(m.parallel), fmt_seconds(m.seq_fast),
                    metrics::TextTable::fmt(speedup, 2),
                    metrics::TextTable::fmt(speedup / p, 2)});
  }
  stable.print(std::cout);

  heading("Heterogeneous gains on the paper's testbed {4,4,1,1}");
  {
    PerfVector perf({4, 4, 1, 1});
    const u64 n = perf.round_up_admissible(base_n);
    const Measured m = measure(opt, {4, 4, 1, 1}, {4, 4, 1, 1}, n, memory);
    metrics::TextTable t({"metric", "measured", "paper"});
    t.add_row({"gain vs fastest node's sequential",
               metrics::TextTable::fmt(m.seq_fast / m.parallel, 2), "1.37"});
    t.add_row({"gain vs slowest node's sequential",
               metrics::TextTable::fmt(m.seq_slow / m.parallel, 2), "6.13"});
    t.print(std::cout);
  }

  heading("Perf-vector mismatch ablation (DESIGN.md)");
  note("machine is always {4,4,1,1}; the algorithm is handed different "
       "perf vectors");
  {
    metrics::TextTable t({"algorithm's perf", "exe time (s)",
                          "vs correct vector"});
    double correct = 0;
    for (const auto& algo :
         {std::vector<u32>{4, 4, 1, 1}, std::vector<u32>{1, 1, 1, 1},
          std::vector<u32>{2, 2, 1, 1}, std::vector<u32>{8, 8, 1, 1},
          std::vector<u32>{1, 1, 4, 4}}) {
      PerfVector algo_perf(algo);
      const u64 n = algo_perf.round_up_admissible(base_n);
      const Measured m = measure(opt, {4, 4, 1, 1}, algo, n, memory);
      if (correct == 0) correct = m.parallel;
      t.add_row({algo_perf.to_string(), fmt_seconds(m.parallel),
                 metrics::TextTable::fmt(m.parallel / correct, 2) + "x"});
    }
    t.print(std::cout);
    note("over-estimating the skew ({8,8,1,1}) or reversing it ({1,1,4,4}) "
         "overloads some node; the calibrated vector wins");
  }
  return 0;
}

}  // namespace
}  // namespace paladin::bench

int main(int argc, char** argv) {
  return paladin::bench::run(paladin::bench::BenchOptions::parse(argc, argv));
}
