// Speedup and mismatch study around the paper's §5 gains: the paper
// reports a gain of 3 on 4 homogeneous nodes, and on the heterogeneous
// cluster a gain of 1.37 against the *fastest* node's sequential time and
// 6.13 against the slowest.  This bench sweeps the cluster size for the
// homogeneous case, reproduces the heterogeneous gain arithmetic, and adds
// the mismatch ablation from DESIGN.md: what happens when the perf vector
// handed to the algorithm disagrees with the machine.
// The splitter-selection sections extend the sweep past the paper's p = 4:
// at p = 64/256/1024 the flat Step 2 (gather ≈ p·Σperf samples, serial sort
// at the designated node) is measured head-to-head against the multi-level
// sample tree of core/splitter_tree.h, with the perf-weighted 2× expansion
// bound asserted for every cell and end-to-end output identity checked at
// p = 64.
#include <iostream>

#include "base/stats.h"
#include "bench/bench_common.h"
#include "core/ext_psrs.h"
#include "core/partition_file.h"
#include "core/sampling.h"
#include "core/splitter_tree.h"
#include "hetero/perf_vector.h"
#include "metrics/expansion.h"
#include "metrics/table.h"
#include "pdm/typed_io.h"
#include "seq/counting.h"
#include "seq/external_sort.h"
#include "workload/generators.h"

namespace paladin::bench {
namespace {

using hetero::PerfVector;

struct Measured {
  double parallel = 0;   // ext-PSRS makespan
  double seq_fast = 0;   // sequential sort of n on the fastest node class
  double seq_slow = 0;   // ... on the slowest
};

Measured measure(const BenchOptions& opt, const std::vector<u32>& machine,
                 const std::vector<u32>& algo, u64 n, u64 memory) {
  PerfVector algo_perf(algo);
  Measured out;
  RunningStats par;
  for (u32 rep = 0; rep < opt.reps; ++rep) {
    net::ClusterConfig config = paper_cluster(opt);
    config.perf = machine;
    config.seed = 40 + rep;
    net::Cluster cluster(config);
    workload::WorkloadSpec spec;
    spec.dist = workload::Dist::kUniform;
    spec.total_records = n;
    spec.node_count = static_cast<u32>(machine.size());
    spec.seed = config.seed;
    auto outcome = cluster.run([&](net::NodeContext& ctx) -> int {
      workload::write_share(spec, ctx.rank(),
                            algo_perf.share_offset(ctx.rank(), n),
                            algo_perf.share(ctx.rank(), n), ctx.disk(),
                            "input");
      core::ExtPsrsConfig psrs;
      psrs.sequential.memory_records = memory;
      psrs.sequential.tape_count = 15;
      psrs.sequential.allow_in_memory = false;
      ctx.clock().reset();
      core::ext_psrs_sort<DefaultKey>(ctx, algo_perf, psrs);
      return 0;
    });
    par.add(outcome.makespan);
  }
  out.parallel = par.mean();

  // Sequential reference: the whole dataset on one node of each speed.
  u32 fastest = 0, slowest = 0;
  for (u32 v : machine) {
    fastest = std::max(fastest, v);
    slowest = slowest == 0 ? v : std::min(slowest, v);
  }
  for (u32 speed : {fastest, slowest}) {
    net::ClusterConfig config = paper_cluster(opt);
    config.perf = {speed};
    net::Cluster cluster(config);
    workload::WorkloadSpec spec;
    spec.dist = workload::Dist::kUniform;
    spec.total_records = n;
    spec.node_count = 1;
    spec.seed = 77;
    auto outcome = cluster.run([&](net::NodeContext& ctx) -> double {
      workload::write_share(spec, 0, 0, n, ctx.disk(), "input");
      seq::ExternalSortConfig sc;
      sc.memory_records = memory;
      sc.tape_count = 15;
      sc.allow_in_memory = false;
      ctx.clock().reset();
      seq::external_sort<DefaultKey>(ctx.disk(), "input", "out", sc, ctx);
      return ctx.clock().now();
    });
    (speed == fastest ? out.seq_fast : out.seq_slow) = outcome.results[0];
  }
  return out;
}

/// The paper's testbed pattern {4,4,1,1} repeated out to p nodes.
std::vector<u32> testbed_perf(u32 p) {
  const u32 pattern[] = {4, 4, 1, 1};
  std::vector<u32> perf;
  perf.reserve(p);
  for (u32 i = 0; i < p; ++i) perf.push_back(pattern[i % 4]);
  return perf;
}

struct SelectMeasured {
  double t_select = 0;           // max over nodes, virtual seconds
  std::vector<u64> final_sizes;  // implied by the selected pivots
  double expansion = 0;
  bool within_bound = true;
};

/// Step-2-focused measurement: local sort (untimed), then the sampling +
/// pivot-selection phase on the virtual clock, then the partition sizes the
/// pivots imply (no exchange/merge — the balance is fully determined here).
SelectMeasured measure_select(const BenchOptions& opt, const PerfVector& perf,
                              u64 n, core::SplitterStrategy strategy,
                              u32 reps) {
  core::SplitterConfig splitter;
  splitter.strategy = strategy;
  const u32 p = perf.node_count();
  SelectMeasured out;
  RunningStats tsel;
  for (u32 rep = 0; rep < reps; ++rep) {
    net::ClusterConfig config = paper_cluster(opt);
    config.perf.assign(perf.values().begin(), perf.values().end());
    config.seed = 500 + rep;
    net::Cluster cluster(config);
    workload::WorkloadSpec spec;
    spec.dist = workload::Dist::kUniform;
    spec.total_records = n;
    spec.node_count = p;
    spec.seed = config.seed;
    struct NodeSel {
      double t_select;
      std::vector<u64> sizes;
    };
    auto outcome = cluster.run([&](net::NodeContext& ctx) -> NodeSel {
      std::vector<u32> local = workload::generate_share(
          spec, ctx.rank(), perf.share_offset(ctx.rank(), n),
          perf.share(ctx.rank(), n));
      seq::metered_sort(std::span<u32>(local), ctx);
      ctx.comm().barrier();  // align every node's phase-2 clock
      const double t0 = ctx.clock().now();
      std::vector<u32> pivots;
      if (core::splitter_uses_tree(splitter, p)) {
        const u64 o_total = splitter.tree_oversample;
        const u64 off = perf.sample_stride_clamped(n, o_total);
        pivots = core::tree_select_pivots<u32>(
            ctx, perf,
            core::draw_regular_sample<u32>(std::span<const u32>(local), off),
            o_total, splitter, 0);
      } else {
        const u64 off = perf.sample_stride(n);
        std::vector<u32> samples = core::draw_regular_sample<u32>(
            std::span<const u32>(local), off);
        std::vector<u32> gathered = ctx.comm().gather_records<u32>(
            std::span<const u32>(samples), 0);
        if (ctx.rank() == 0) {
          pivots = core::select_pivots<u32>(gathered, perf, ctx);
        }
        pivots = ctx.comm().bcast_records<u32>(std::move(pivots), 0);
      }
      NodeSel r;
      r.t_select = ctx.clock().now() - t0;
      const std::vector<u64> cuts = core::partition_cuts<u32>(
          std::span<const u32>(local), std::span<const u32>(pivots), ctx);
      r.sizes.resize(p);
      for (u32 j = 0; j < p; ++j) r.sizes[j] = cuts[j + 1] - cuts[j];
      return r;
    });
    double worst = 0;
    std::vector<u64> sizes(p, 0);
    for (u32 i = 0; i < p; ++i) {
      worst = std::max(worst, outcome.results[i].t_select);
      for (u32 j = 0; j < p; ++j) sizes[j] += outcome.results[i].sizes[j];
    }
    tsel.add(worst);
    out.final_sizes = std::move(sizes);
  }
  out.t_select = tsel.mean();
  out.expansion = metrics::sublist_expansion(
      std::span<const u64>(out.final_sizes), perf);
  const std::vector<u64> shares = perf.shares(n);
  out.within_bound = metrics::within_psrs_bound(
      std::span<const u64>(out.final_sizes), std::span<const u64>(shares));
  return out;
}

int run(const BenchOptions& opt) {
  const u64 memory = scaled_memory(opt);
  const u64 base_n = scaled_pow2(opt, 24);

  heading("Homogeneous speedup vs cluster size (paper: gain 3 at p=4)");
  metrics::TextTable stable({"p", "n", "parallel (s)", "sequential (s)",
                             "speedup", "efficiency"});
  for (u32 p : {2u, 4u, 8u, 16u}) {
    std::vector<u32> machine(p, 1);
    PerfVector perf(machine);
    const u64 n = perf.round_up_admissible(base_n);
    const Measured m = measure(opt, machine, machine, n, memory);
    const double speedup = m.seq_fast / m.parallel;
    stable.add_row({std::to_string(p), std::to_string(n),
                    fmt_seconds(m.parallel), fmt_seconds(m.seq_fast),
                    metrics::TextTable::fmt(speedup, 2),
                    metrics::TextTable::fmt(speedup / p, 2)});
  }
  stable.print(std::cout);

  heading("Heterogeneous gains on the paper's testbed {4,4,1,1}");
  {
    PerfVector perf({4, 4, 1, 1});
    const u64 n = perf.round_up_admissible(base_n);
    const Measured m = measure(opt, {4, 4, 1, 1}, {4, 4, 1, 1}, n, memory);
    metrics::TextTable t({"metric", "measured", "paper"});
    t.add_row({"gain vs fastest node's sequential",
               metrics::TextTable::fmt(m.seq_fast / m.parallel, 2), "1.37"});
    t.add_row({"gain vs slowest node's sequential",
               metrics::TextTable::fmt(m.seq_slow / m.parallel, 2), "6.13"});
    t.print(std::cout);
  }

  heading("Perf-vector mismatch ablation (DESIGN.md)");
  note("machine is always {4,4,1,1}; the algorithm is handed different "
       "perf vectors");
  {
    metrics::TextTable t({"algorithm's perf", "exe time (s)",
                          "vs correct vector"});
    double correct = 0;
    for (const auto& algo :
         {std::vector<u32>{4, 4, 1, 1}, std::vector<u32>{1, 1, 1, 1},
          std::vector<u32>{2, 2, 1, 1}, std::vector<u32>{8, 8, 1, 1},
          std::vector<u32>{1, 1, 4, 4}}) {
      PerfVector algo_perf(algo);
      const u64 n = algo_perf.round_up_admissible(base_n);
      const Measured m = measure(opt, {4, 4, 1, 1}, algo, n, memory);
      if (correct == 0) correct = m.parallel;
      t.add_row({algo_perf.to_string(), fmt_seconds(m.parallel),
                 metrics::TextTable::fmt(m.parallel / correct, 2) + "x"});
    }
    t.print(std::cout);
    note("over-estimating the skew ({8,8,1,1}) or reversing it ({1,1,4,4}) "
         "overloads some node; the calibrated vector wins");
  }

  heading("Splitter selection beyond the paper: flat vs tree Step 2 at "
          "p = 64/256/1024");
  note("perf = {4,4,1,1} repeated; flat gathers ~p*sum(perf) samples at the "
       "designated node and sorts them serially, the tree reduces bounded "
       "digests through sqrt(p)-sized groups (core/splitter_tree.h)");
  {
    metrics::TextTable t({"p", "n", "flat select (s)", "tree select (s)",
                          "speedup", "tree expansion"});
    bool bounds_ok = true;
    double ratio_p1024 = 0;
    for (u32 p : {64u, 256u, 1024u}) {
      const PerfVector perf(testbed_perf(p));
      // Big enough that both paths draw a real (stride >= 2) sample.
      const u64 n = perf.round_up_admissible(4 * p * perf.sum());
      // The p = 1024 cells spin up 1024 node threads per rep; cap the reps
      // so the sweep stays tractable at the default 5.
      const u32 reps = p >= 1024 ? std::min(opt.reps, 2u) : opt.reps;
      const SelectMeasured flat =
          measure_select(opt, perf, n, core::SplitterStrategy::kFlat, reps);
      const SelectMeasured tree =
          measure_select(opt, perf, n, core::SplitterStrategy::kTree, reps);
      const double ratio = flat.t_select / tree.t_select;
      if (p == 1024) ratio_p1024 = ratio;
      // The 2x perf-share bound must hold for every cell, both strategies.
      bounds_ok = bounds_ok && flat.within_bound && tree.within_bound;
      if (!flat.within_bound || !tree.within_bound) {
        std::cerr << "FAIL: expansion bound violated at p=" << p
                  << " (flat=" << flat.expansion
                  << ", tree=" << tree.expansion << ")\n";
      }
      t.add_row({std::to_string(p), std::to_string(n),
                 metrics::TextTable::fmt(flat.t_select, 3),
                 metrics::TextTable::fmt(tree.t_select, 3),
                 metrics::TextTable::fmt(ratio, 1) + "x",
                 metrics::TextTable::fmt(tree.expansion, 3)});
    }
    t.print(std::cout);
    note("flat Step-2 cost grows with p^2 (sample volume) plus the serial "
         "sort; the tree's per-level merges run concurrently and no node "
         "holds more than O(p polylog p) samples");
    if (!bounds_ok) return 1;
    if (ratio_p1024 < 4.0) {
      std::cerr << "FAIL: tree speedup at p=1024 is "
                << metrics::TextTable::fmt(ratio_p1024, 2)
                << "x, expected >= 4x\n";
      return 1;
    }
  }

  heading("p = 64 end-to-end: flat and tree external runs, output identity");
  {
    const u32 p = 64;
    const PerfVector perf(testbed_perf(p));
    const u64 n = perf.round_up_admissible(scaled_pow2(opt, 18));
    std::vector<std::vector<DefaultKey>> outputs;
    metrics::TextTable t({"strategy", "makespan (s)"});
    for (const core::SplitterStrategy strategy :
         {core::SplitterStrategy::kFlat, core::SplitterStrategy::kTree}) {
      net::ClusterConfig config = paper_cluster(opt);
      config.perf.assign(perf.values().begin(), perf.values().end());
      config.seed = 77;
      net::Cluster cluster(config);
      workload::WorkloadSpec spec;
      spec.dist = workload::Dist::kUniform;
      spec.total_records = n;
      spec.node_count = p;
      spec.seed = 77;
      auto outcome =
          cluster.run([&](net::NodeContext& ctx) -> std::vector<DefaultKey> {
            workload::write_share(spec, ctx.rank(),
                                  perf.share_offset(ctx.rank(), n),
                                  perf.share(ctx.rank(), n), ctx.disk(),
                                  "input");
            core::ExtPsrsConfig psrs;
            psrs.sequential.memory_records = 4096;
            psrs.sequential.tape_count = 15;
            psrs.sequential.allow_in_memory = false;
            psrs.splitter.strategy = strategy;
            ctx.clock().reset();
            core::ext_psrs_sort<DefaultKey>(ctx, perf, psrs);
            return pdm::read_file<DefaultKey>(ctx.disk(), "sorted");
          });
      std::vector<DefaultKey> all;
      for (auto& slice : outcome.results) {
        all.insert(all.end(), slice.begin(), slice.end());
      }
      outputs.push_back(std::move(all));
      t.add_row({core::to_string(strategy), fmt_seconds(outcome.makespan)});
    }
    t.print(std::cout);
    if (outputs[0] != outputs[1]) {
      std::cerr << "FAIL: flat and tree external runs disagree on the "
                   "global sorted sequence\n";
      return 1;
    }
    note("both strategies produce the identical global sorted sequence "
         "(different pivots move slice boundaries, never records)");
  }
  return 0;
}

}  // namespace
}  // namespace paladin::bench

int main(int argc, char** argv) {
  return paladin::bench::run(paladin::bench::BenchOptions::parse(argc, argv));
}
