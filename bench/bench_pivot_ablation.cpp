// Ablation of the pivot / partitioning strategy (paper §3.1–§3.3): PSRS
// regular sampling vs Li–Sevcik overpartitioning vs DeWitt probabilistic
// splitting, measured as sublist expansion across the whole benchmark
// input suite.  The paper's argument: overpartitioning's expansion stays
// around 1.3 even with large s ("some processors receive 25% of work in
// supplement"), while PSRS achieves a few percent; random sampling without
// the initial sort (DeWitt) sits in between, degrading on skewed inputs.
// The splitter-strategy section compares the flat Step 2 against the
// multi-level sample tree (core/splitter_tree.h) and the exact bisection,
// at p = 16/64, and drops machine-readable rows in
// bench_results/BENCH_splitters.json for the perf_smoke regression gate
// (tools/check_perf_regression.py --splitters).
#include <filesystem>
#include <fstream>
#include <iostream>

#include "base/stats.h"
#include "bench/bench_common.h"
#include "core/exact_splitters.h"
#include "base/math_util.h"
#include "core/overpartition.h"
#include "core/psrs_incore.h"
#include "core/splitter_tree.h"
#include "hetero/perf_vector.h"
#include "metrics/expansion.h"
#include "metrics/table.h"
#include "workload/generators.h"

namespace paladin::bench {
namespace {

using hetero::PerfVector;
using workload::Dist;

/// Expansion of one PSRS run (weighted max partition / optimal).
double psrs_expansion(const PerfVector& perf, u64 n, Dist dist, u64 seed,
                      u64 oversample = 1) {
  net::ClusterConfig config;
  config.perf.assign(perf.values().begin(), perf.values().end());
  config.seed = seed;
  net::Cluster cluster(config);
  workload::WorkloadSpec spec{dist, n, perf.node_count(), seed};
  auto outcome = cluster.run([&](net::NodeContext& ctx) -> u64 {
    std::vector<u32> local = workload::generate_share(
        spec, ctx.rank(), perf.share_offset(ctx.rank(), n),
        perf.share(ctx.rank(), n));
    return core::psrs_incore_sort<u32>(ctx, perf, std::move(local), nullptr,
                                       {}, oversample)
        .size();
  });
  return metrics::sublist_expansion(std::span<const u64>(outcome.results),
                                    perf);
}

/// Expansion of one exact-splitter run (should be 1.0 by construction).
double exact_expansion(const PerfVector& perf, u64 n, Dist dist, u64 seed) {
  net::ClusterConfig config;
  config.perf.assign(perf.values().begin(), perf.values().end());
  config.seed = seed;
  net::Cluster cluster(config);
  workload::WorkloadSpec spec{dist, n, perf.node_count(), seed};
  auto outcome = cluster.run([&](net::NodeContext& ctx) -> u64 {
    std::vector<u32> local = workload::generate_share(
        spec, ctx.rank(), perf.share_offset(ctx.rank(), n),
        perf.share(ctx.rank(), n));
    return core::psrs_exact_incore_sort<u32>(ctx, perf, std::move(local))
        .size();
  });
  return metrics::sublist_expansion(std::span<const u64>(outcome.results),
                                    perf);
}

/// Expansion of one overpartitioning run with factor s.
double overpartition_expansion(const PerfVector& perf, u64 n, Dist dist,
                               u32 s, u64 seed) {
  net::ClusterConfig config;
  config.perf.assign(perf.values().begin(), perf.values().end());
  config.seed = seed;
  net::Cluster cluster(config);
  workload::WorkloadSpec spec{dist, n, perf.node_count(), seed};
  core::OverpartitionConfig op;
  op.s = s;
  auto outcome = cluster.run([&](net::NodeContext& ctx) -> u64 {
    std::vector<u32> local = workload::generate_share(
        spec, ctx.rank(), perf.share_offset(ctx.rank(), n),
        perf.share(ctx.rank(), n));
    core::OverpartitionReport report;
    core::overpartition_sort<u32>(ctx, perf, std::move(local), op, &report);
    return report.final_records;
  });
  return metrics::sublist_expansion(std::span<const u64>(outcome.results),
                                    perf);
}

/// Expansion of one DeWitt-style probabilistic-splitting run, approximated
/// in-core: random-sample pivots on unsorted data (oversample 16), then a
/// direct partition count.
double dewitt_expansion(const PerfVector& perf, u64 n, Dist dist, u64 seed) {
  // s = 1 overpartitioning with one sublist per node IS probabilistic
  // splitting with greedy assignment disabled; emulate by s=1.
  return overpartition_expansion(perf, n, dist, 1, seed);
}

/// Which splitter-selection machinery a scaling row measures.
enum class Strat { kFlat, kTree, kExact };

const char* strat_name(Strat s) {
  switch (s) {
    case Strat::kFlat: return "flat";
    case Strat::kTree: return "tree";
    case Strat::kExact: return "exact";
  }
  PALADIN_UNREACHABLE();
}

struct StrategyResult {
  double t_select = 0;  // selection phase, max over nodes, virtual seconds
  double expansion = 0;
};

/// One in-core run at scale p measuring only what the strategies differ
/// in: the selection phase's virtual time and the balance it achieves.
StrategyResult strategy_run(const PerfVector& perf, u64 n, Dist dist,
                            u64 seed, Strat strat) {
  net::ClusterConfig config;
  config.perf.assign(perf.values().begin(), perf.values().end());
  config.seed = seed;
  net::Cluster cluster(config);
  workload::WorkloadSpec spec{dist, n, perf.node_count(), seed};
  struct NodeR {
    double t_select;
    u64 size;
  };
  auto outcome = cluster.run([&](net::NodeContext& ctx) -> NodeR {
    std::vector<u32> local = workload::generate_share(
        spec, ctx.rank(), perf.share_offset(ctx.rank(), n),
        perf.share(ctx.rank(), n));
    NodeR r{};
    if (strat == Strat::kExact) {
      core::ExactPsrsReport report;
      r.size = core::psrs_exact_incore_sort<u32>(ctx, perf, std::move(local),
                                                 &report)
                   .size();
      r.t_select = report.t_select;
    } else {
      core::SplitterConfig splitter;
      splitter.strategy = strat == Strat::kTree
                              ? core::SplitterStrategy::kTree
                              : core::SplitterStrategy::kFlat;
      core::InCorePsrsReport report;
      r.size = core::psrs_incore_sort<u32>(ctx, perf, std::move(local),
                                           &report, {}, 1, splitter)
                   .size();
      r.t_select = report.t_select;
    }
    return r;
  });
  StrategyResult res;
  std::vector<u64> sizes;
  sizes.reserve(perf.node_count());
  for (const NodeR& nr : outcome.results) {
    res.t_select = std::max(res.t_select, nr.t_select);
    sizes.push_back(nr.size);
  }
  res.expansion =
      metrics::sublist_expansion(std::span<const u64>(sizes), perf);
  return res;
}

int run(const BenchOptions& opt) {
  const u64 base_n = opt.full ? 400000 : 80000;

  heading("Pivot-strategy ablation: sublist expansion per input family");
  note("PSRS = regular sampling of sorted data (the paper); over(s) = "
       "Li-Sevcik overpartitioning; split = probabilistic splitting "
       "(DeWitt, = over(1))");

  for (const auto& perf_values :
       {std::vector<u32>{1, 1, 1, 1}, std::vector<u32>{4, 4, 1, 1}}) {
    PerfVector perf(perf_values);
    const u64 n = perf.round_up_admissible(base_n);
    std::cout << "\n  perf = " << perf.to_string() << ", n = " << n << "\n";
    metrics::TextTable table({"input", "PSRS", "PSRS(o=8)", "over(2)",
                              "over(4)", "over(8)", "split", "exact"});
    for (Dist dist : workload::kAllBenchmarks) {
      RunningStats psrs, psrs8, o2, o4, o8, split, exact;
      for (u32 rep = 0; rep < opt.reps; ++rep) {
        const u64 seed = 900 + rep;
        psrs.add(psrs_expansion(perf, n, dist, seed));
        psrs8.add(psrs_expansion(perf, n, dist, seed, 8));
        o2.add(overpartition_expansion(perf, n, dist, 2, seed));
        o4.add(overpartition_expansion(perf, n, dist, 4, seed));
        o8.add(overpartition_expansion(perf, n, dist, 8, seed));
        split.add(dewitt_expansion(perf, n, dist, seed));
        exact.add(exact_expansion(perf, n, dist, seed));
      }
      table.add_row({workload::to_string(dist),
                     metrics::TextTable::fmt(psrs.mean(), 3),
                     metrics::TextTable::fmt(psrs8.mean(), 3),
                     metrics::TextTable::fmt(o2.mean(), 3),
                     metrics::TextTable::fmt(o4.mean(), 3),
                     metrics::TextTable::fmt(o8.mean(), 3),
                     metrics::TextTable::fmt(split.mean(), 3),
                     metrics::TextTable::fmt(exact.mean(), 3)});
    }
    table.print(std::cout);
  }
  note("paper §3.3: Li-Sevcik report expansion ~1.3 at high s; PSRS stays "
       "within a few percent on uniform data and is deterministic (bound 2) "
       "on every distribution");
  note("PSRS(o=8) densifies the sample 8x (extension); 'exact' is the "
       "multi-round bisection extension — balance 1.0 by construction");

  heading("Balance vs communication rounds (the one-step design trade)");
  {
    // Compute/disk free, Fast-Ethernet latency only: the exact splitters'
    // ~32 synchronous rounds vs PSRS's single gather/broadcast.
    PerfVector perf({1, 1, 1, 1});
    const u64 n = perf.round_up_admissible(base_n);
    metrics::TextTable t({"strategy", "simulated comms time (s)"});
    for (bool exact : {false, true}) {
      RunningStats acc;
      for (u32 rep = 0; rep < opt.reps; ++rep) {
        net::ClusterConfig config;
        config.perf = {1, 1, 1, 1};
        config.cost = net::CostModel::free_compute();
        config.seed = 60 + rep;
        net::Cluster cluster(config);
        workload::WorkloadSpec spec{Dist::kUniform, n, 4, 60 + rep};
        auto outcome = cluster.run([&](net::NodeContext& ctx) -> int {
          std::vector<u32> local = workload::generate_share(
              spec, ctx.rank(), perf.share_offset(ctx.rank(), n),
              perf.share(ctx.rank(), n));
          if (exact) {
            core::psrs_exact_incore_sort<u32>(ctx, perf, std::move(local));
          } else {
            core::psrs_incore_sort<u32>(ctx, perf, std::move(local));
          }
          return 0;
        });
        acc.add(outcome.makespan);
      }
      t.add_row({exact ? "exact splitters (multi-round)"
                       : "PSRS regular sampling (one-step)",
                 metrics::TextTable::fmt(acc.mean(), 4)});
    }
    t.print(std::cout);
    note("the paper's one-step requirement (§3) exists precisely because "
         "multi-round exactness pays ~32 latency-bound rounds");
  }

  heading("Splitter strategies at scale: flat vs tree vs exact "
          "(selection time and balance)");
  note("perf = {4,4,1,1} repeated to p nodes; t_select is the selection "
       "phase alone on the virtual clock (deterministic, so the perf gate "
       "can diff it exactly)");
  {
    struct SplitterRow {
      std::string strategy, dist;
      u32 p;
      u64 n;
      double t_select, expansion;
    };
    std::vector<SplitterRow> rows;
    metrics::TextTable table(
        {"p", "input", "strategy", "t_select (s)", "expansion"});
    for (u32 p : {16u, 64u}) {
      std::vector<u32> perf_values;
      const u32 pattern[] = {4, 4, 1, 1};
      for (u32 i = 0; i < p; ++i) perf_values.push_back(pattern[i % 4]);
      const PerfVector perf(perf_values);
      // Regular sampling is calibrated only when the stride divides the
      // shares exactly (the paper's admissibility condition); round n up
      // to a multiple of p·Σperf·2 so both the flat (oversample 1) and
      // the tree (tree_oversample 2) paths sample without truncation.
      const u64 n =
          round_up(base_n, static_cast<u64>(p) * perf.sum() * 2);
      for (Dist dist : {Dist::kUniform, Dist::kZipf}) {
        for (Strat strat : {Strat::kFlat, Strat::kTree, Strat::kExact}) {
          RunningStats tsel, expn;
          for (u32 rep = 0; rep < opt.reps; ++rep) {
            const StrategyResult r =
                strategy_run(perf, n, dist, 900 + rep, strat);
            tsel.add(r.t_select);
            expn.add(r.expansion);
          }
          rows.push_back({strat_name(strat), workload::to_string(dist), p, n,
                          tsel.mean(), expn.mean()});
          table.add_row({std::to_string(p), workload::to_string(dist),
                         strat_name(strat),
                         metrics::TextTable::fmt(tsel.mean(), 4),
                         metrics::TextTable::fmt(expn.mean(), 3)});
        }
      }
    }
    table.print(std::cout);
    note("the tree shrinks the designated node's serial sort (its advantage "
         "grows with p; bench_scalability pushes to p = 1024); exact buys "
         "balance 1.0 for ~32 latency-bound rounds");

    std::filesystem::create_directories("bench_results");
    std::ofstream json("bench_results/BENCH_splitters.json");
    json << "{\n  \"bench\": \"splitters\",\n  \"reps\": " << opt.reps
         << ",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const SplitterRow& r = rows[i];
      json << "    {\"strategy\": \"" << r.strategy << "\", \"p\": " << r.p
           << ", \"dist\": \"" << r.dist << "\", \"records\": " << r.n
           << ", \"t_select_s\": " << r.t_select
           << ", \"expansion\": " << r.expansion << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    json.close();
    note("wrote bench_results/BENCH_splitters.json");
  }
  return 0;
}

}  // namespace
}  // namespace paladin::bench

int main(int argc, char** argv) {
  return paladin::bench::run(paladin::bench::BenchOptions::parse(argc, argv));
}
