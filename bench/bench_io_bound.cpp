// Validates the PDM side of the paper (§2): measured block I/Os of the
// sequential external sorts against the Aggarwal–Vitter bound
// Sort(N) = Θ((n/D)·log_m n) (Theorem 1), across problem size, memory
// size and disk count D (striped volumes), and compares polyphase against
// the balanced k-way baseline and both run-formation strategies.
#include <chrono>
#include <filesystem>
#include <iostream>

#include "base/meter.h"
#include "base/rng.h"
#include "bench/bench_common.h"
#include "metrics/table.h"
#include "pdm/pdm_math.h"
#include "pdm/striped_volume.h"
#include "pdm/typed_io.h"
#include "seq/external_sort.h"
#include "seq/striped_sort.h"

namespace paladin::bench {
namespace {

void fill_random(pdm::Disk& disk, const std::string& name, u64 n, u64 seed) {
  pdm::BlockFile f = disk.create(name);
  pdm::BlockWriter<u32> w(f);
  Xoshiro256 rng(seed);
  for (u64 i = 0; i < n; ++i) w.push(static_cast<u32>(rng.next()));
  w.flush();
}

int run(const BenchOptions& opt) {
  pdm::DiskParams params;  // 32 KiB blocks, 8192 u32 records per block
  const u64 rpb = params.records_per_block(sizeof(u32));

  heading("Theorem 1 / Eq.(1): measured block I/Os vs the PDM sort bound");
  metrics::TextTable table({"N (records)", "M (records)", "strategy",
                            "run formation", "initial runs", "passes",
                            "measured IOs", "bound 2(n)(1+ceil(log_m n))",
                            "measured/bound"});

  const u64 base = opt.full ? (u64{1} << 24) : (u64{1} << 20);
  struct Case {
    u64 n, m;
    seq::SortStrategy strategy;
    seq::RunFormation rf;
  };
  std::vector<Case> cases;
  for (u64 n : {base / 4, base, base * 2}) {
    for (u64 m : {base / 64, base / 16}) {
      cases.push_back({n, m, seq::SortStrategy::kPolyphase,
                       seq::RunFormation::kLoadSortStore});
      cases.push_back({n, m, seq::SortStrategy::kCascade,
                       seq::RunFormation::kLoadSortStore});
      cases.push_back({n, m, seq::SortStrategy::kBalancedKWay,
                       seq::RunFormation::kLoadSortStore});
      cases.push_back({n, m, seq::SortStrategy::kPolyphase,
                       seq::RunFormation::kReplacementSelection});
    }
  }

  for (const Case& c : cases) {
    pdm::Disk disk = pdm::Disk::in_memory(params);
    fill_random(disk, "in", c.n, 42 + c.n);
    disk.reset_stats();

    seq::ExternalSortConfig sort_config;
    sort_config.memory_records = c.m;
    sort_config.strategy = c.strategy;
    sort_config.run_formation = c.rf;
    // Tape count bounded by the memory budget (m blocks).
    sort_config.tape_count = static_cast<u32>(
        std::min<u64>(15, seq::max_fan_in<u32>(disk, c.m) + 1));
    sort_config.allow_in_memory = false;
    NullMeter meter;
    const auto result =
        seq::external_sort<u32>(disk, "in", "out", sort_config, meter);

    const u64 measured = disk.stats().total_block_ios();
    const u64 bound = pdm::sequential_sort_io_bound(c.n, c.m, rpb);
    table.add_row(
        {std::to_string(c.n), std::to_string(c.m),
         seq::to_string(c.strategy), seq::to_string(c.rf),
         std::to_string(result.initial_runs),
         std::to_string(result.merge_passes), std::to_string(measured),
         std::to_string(bound),
         metrics::TextTable::fmt(static_cast<double>(measured) /
                                     static_cast<double>(bound),
                                 2)});
  }
  table.print(std::cout);
  note("polyphase pays one distribution pass over the balanced merge but "
       "needs no run redistribution between phases; cascade's descending "
       "sub-merges overtake polyphase as the tape count grows (Knuth "
       "5.4.3); replacement selection halves the initial run count (runs "
       "~2M on random input)");

  heading("PDM D disks: parallel I/O scales as ceil(n/D) (striped writes)");
  metrics::TextTable dtable({"D", "blocks written", "parallel steps",
                             "ideal n/D", "efficiency"});
  const u64 stream_records = (opt.full ? 4096u : 512u) * rpb;
  for (u64 d : {u64{1}, u64{2}, u64{4}, u64{8}}) {
    pdm::StripedVolume vol = pdm::StripedVolume::in_memory(d, params);
    pdm::StripedWriter<u32> w(vol, "s");
    Xoshiro256 rng(7);
    for (u64 i = 0; i < stream_records; ++i) {
      w.push(static_cast<u32>(rng.next()));
    }
    w.flush();
    const u64 blocks = vol.total_stats().blocks_written;
    const u64 steps = vol.parallel_block_ios();
    const u64 ideal = ceil_div(blocks, d);
    dtable.add_row({std::to_string(d), std::to_string(blocks),
                    std::to_string(steps), std::to_string(ideal),
                    metrics::TextTable::fmt(
                        static_cast<double>(ideal) / static_cast<double>(steps),
                        3)});
  }
  dtable.print(std::cout);
  note("the paper's algorithm needs only the D=1 building blocks per node "
       "(disks are used independently); striping shows the D>1 headroom of "
       "the model");

  heading("Striped external sort: full sort on D disks (extension)");
  metrics::TextTable stable({"D", "N (records)", "runs", "passes",
                             "total IOs", "max per-disk IOs",
                             "D=1 IOs / D", "parallel speedup"});
  const u64 sn = opt.full ? (u64{1} << 23) : (u64{1} << 19);
  const u64 sm = sn / 32;
  u64 d1_ios = 0;
  for (u64 d : {u64{1}, u64{2}, u64{4}, u64{8}}) {
    pdm::StripedVolume vol = pdm::StripedVolume::in_memory(d, params);
    {
      pdm::StripedWriter<u32> w(vol, "in");
      Xoshiro256 rng(21);
      for (u64 i = 0; i < sn; ++i) w.push(static_cast<u32>(rng.next()));
      w.flush();
    }
    vol.reset_stats();
    NullMeter meter;
    const auto result = seq::striped_sort<u32>(vol, "in", "out", sm, meter);
    const u64 total = vol.total_stats().total_block_ios();
    const u64 per_disk = vol.parallel_block_ios();
    if (d == 1) d1_ios = per_disk;
    stable.add_row(
        {std::to_string(d), std::to_string(sn),
         std::to_string(result.initial_runs),
         std::to_string(result.merge_passes), std::to_string(total),
         std::to_string(per_disk), std::to_string(ceil_div(d1_ios, d)),
         metrics::TextTable::fmt(
             static_cast<double>(d1_ios) / static_cast<double>(per_disk),
             2)});
  }
  stable.print(std::cout);
  note("per-disk (parallel) I/O falls ~linearly in D, as Theorem 1's n/D "
       "term predicts; the striped-cursor memory cost reduces the fan-in, "
       "so very large D can add a merge pass");

  heading("Wall-clock on real files: sync vs overlapped (double-buffered) "
          "I/O");
  metrics::TextTable otable(
      {"N (records)", "io mode", "block IOs", "wall s", "speedup"});
  const std::filesystem::path scratch =
      (opt.workdir.empty() ? std::filesystem::temp_directory_path()
                           : opt.workdir) /
      "paladin_io_bound_overlap";
  const u64 on = opt.full ? (u64{1} << 23) : (u64{1} << 19);
  double sync_wall = 0.0;
  u64 sync_ios = 0;
  bool ios_match = true;
  for (const pdm::IoMode mode : {pdm::IoMode::kSync, pdm::IoMode::kOverlapped}) {
    std::filesystem::remove_all(scratch);
    std::filesystem::create_directories(scratch);
    pdm::DiskParams oparams = params;
    oparams.io_mode = mode;
    pdm::Disk disk = pdm::Disk::posix(scratch, oparams);
    fill_random(disk, "in", on, 77);
    disk.reset_stats();
    seq::ExternalSortConfig sc;
    sc.memory_records = on / 32;
    sc.allow_in_memory = false;
    NullMeter nmeter;
    const auto t0 = std::chrono::steady_clock::now();
    seq::external_sort<u32>(disk, "in", "out", sc, nmeter);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const u64 ios = disk.stats().total_block_ios();
    if (mode == pdm::IoMode::kSync) {
      sync_wall = wall;
      sync_ios = ios;
    } else if (ios != sync_ios) {
      ios_match = false;
    }
    otable.add_row({std::to_string(on), pdm::to_string(mode),
                    std::to_string(ios), fmt_seconds(wall),
                    metrics::TextTable::fmt(sync_wall / wall, 2) + "x"});
  }
  std::filesystem::remove_all(scratch);
  otable.print(std::cout);
  note(std::string("overlapped mode moves the fwrite/fread calls onto a "
                   "per-disk worker thread; the metered block count is ") +
       (ios_match ? "identical" : "DIFFERENT (BUG)") +
       " across modes, so only wall-clock changes");
  return 0;
}

}  // namespace
}  // namespace paladin::bench

int main(int argc, char** argv) {
  return paladin::bench::run(paladin::bench::BenchOptions::parse(argc, argv));
}
