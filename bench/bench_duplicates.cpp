// Reproduces the paper's §3.1 duplicate-keys analysis: with d duplicates of
// one key, the PSRS load-balance upper bound grows from U = 2n/p to U + d,
// i.e. linearly in the duplicate multiplicity — and in practice duplicates
// are "not a concern" until d rivals n/p.  We sweep the duplicate fraction
// and report the worst observed partition against both bounds.
#include <iostream>

#include "base/stats.h"
#include "bench/bench_common.h"
#include "core/psrs_incore.h"
#include "hetero/perf_vector.h"
#include "metrics/expansion.h"
#include "metrics/table.h"
#include "workload/generators.h"

namespace paladin::bench {
namespace {

using hetero::PerfVector;

int run(const BenchOptions& opt) {
  PerfVector perf({1, 1, 1, 1});
  const u64 n = perf.round_up_admissible(opt.full ? 1000000 : 200000);

  heading("Duplicates study (§3.1): bound U = 2n/p grows to U + d");
  metrics::TextTable table({"dup fraction", "d (duplicates)", "max partition",
                            "2n/p", "2n/p + d", "within U", "within U+d"});

  for (double fraction : {0.0, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    RunningStats max_part;
    for (u32 rep = 0; rep < opt.reps; ++rep) {
      net::ClusterConfig config;
      config.perf = {1, 1, 1, 1};
      config.seed = 300 + rep;
      net::Cluster cluster(config);
      workload::WorkloadSpec spec;
      spec.dist = fraction >= 1.0 ? workload::Dist::kZero
                                  : workload::Dist::kDuplicates;
      spec.dup_fraction = fraction;
      spec.total_records = n;
      spec.node_count = 4;
      spec.seed = config.seed;

      auto outcome = cluster.run([&](net::NodeContext& ctx) -> u64 {
        std::vector<u32> local = workload::generate_share(
            spec, ctx.rank(), perf.share_offset(ctx.rank(), n),
            perf.share(ctx.rank(), n));
        return core::psrs_incore_sort<u32>(ctx, perf, std::move(local)).size();
      });
      u64 mx = 0;
      for (u64 s : outcome.results) mx = std::max(mx, s);
      max_part.add(static_cast<double>(mx));
    }
    const u64 d = static_cast<u64>(static_cast<double>(n) * fraction);
    const u64 u_bound = 2 * n / 4;
    const bool within_u = max_part.max() <= static_cast<double>(u_bound);
    const bool within_ud =
        max_part.max() <= static_cast<double>(u_bound + d);
    table.add_row({metrics::TextTable::fmt(fraction, 2), std::to_string(d),
                   metrics::TextTable::fmt(max_part.mean(), 0),
                   std::to_string(u_bound), std::to_string(u_bound + d),
                   within_u ? "yes" : "no", within_ud ? "yes" : "no"});
  }
  table.print(std::cout);
  note("ties break toward lower ranks, so a duplicate run of length d can "
       "land on one node; the U+d bound always holds, and U itself holds "
       "until d rivals n/p (paper: 'in practice it is not a concern')");
  return 0;
}

}  // namespace
}  // namespace paladin::bench

int main(int argc, char** argv) {
  return paladin::bench::run(paladin::bench::BenchOptions::parse(argc, argv));
}
