// Shared harness for the paper-reproduction benches: flag parsing, the
// calibrated 2002-era cost model, repetition helpers and paper-vs-measured
// row printing.  Every bench accepts:
//   --full        paper-scale problem sizes (default: ~16x smaller so the
//                 whole suite runs in a couple of minutes)
//   --reps=N      repetitions per configuration (default 5; paper used 30)
//   --workdir=P   put node scratch files on a real disk instead of RAM
//   --obs-out=P   benches that support tracing write P.trace.json and
//                 P.report.json for one representative configuration
#pragma once

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "base/stats.h"
#include "base/types.h"
#include "metrics/table.h"
#include "net/cluster.h"

namespace paladin::bench {

struct BenchOptions {
  bool full = false;
  u32 reps = 5;
  std::filesystem::path workdir;
  std::string obs_out;

  static BenchOptions parse(int argc, char** argv) {
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--full") {
        opt.full = true;
        opt.reps = 10;
      } else if (arg.rfind("--reps=", 0) == 0) {
        opt.reps = static_cast<u32>(std::stoul(arg.substr(7)));
      } else if (arg.rfind("--workdir=", 0) == 0) {
        opt.workdir = arg.substr(10);
      } else if (arg.rfind("--obs-out=", 0) == 0) {
        opt.obs_out = arg.substr(10);
      } else if (arg == "--help" || arg == "-h") {
        std::cout << "flags: --full  --reps=N  --workdir=PATH  "
                     "--obs-out=PREFIX\n";
        std::exit(0);
      } else {
        std::cerr << "unknown flag: " << arg << "\n";
        std::exit(2);
      }
    }
    return opt;
  }
};

/// The simulated testbed of the paper (Table 1): 4 Alpha 21164 nodes, two
/// of them loaded 4x, SCSI disks, Fast Ethernet.  The compute-cost
/// constants are calibrated so the speed-1 sequential external sort of
/// 2^25 integers lands near the paper's ~2000 s (see EXPERIMENTS.md).
inline net::ClusterConfig paper_cluster(const BenchOptions& opt) {
  net::ClusterConfig config = net::ClusterConfig::paper_testbed();
  config.network = net::NetworkModel::fast_ethernet();
  config.disk = pdm::DiskParams::scsi_2002();
  config.cost = net::CostModel::alpha_2002();
  config.workdir = opt.workdir;
  return config;
}

/// Scaled-vs-full problem size: the paper's 2^x at --full, 2^(x-4) scaled.
inline u64 scaled_pow2(const BenchOptions& opt, u32 paper_log2) {
  return u64{1} << (opt.full ? paper_log2 : paper_log2 - 4);
}

/// Memory budget (records) matching the scale: 2^20 records at full scale
/// (the 4 MB in-core workspace a 2002 node would grant the sort), 2^17
/// scaled — the minimum that keeps m = M/B ≥ 16 so the paper's 15 tapes
/// still fit.
inline u64 scaled_memory(const BenchOptions& opt) {
  return u64{1} << (opt.full ? 20 : 17);
}

inline std::string fmt_seconds(double s) {
  return metrics::TextTable::fmt(s, 2);
}

/// Prints a "paper vs measured" comparison line under a table.
inline void note(const std::string& text) { std::cout << "  " << text << "\n"; }

inline void heading(const std::string& text) {
  std::cout << "\n=== " << text << " ===\n";
}

}  // namespace paladin::bench
