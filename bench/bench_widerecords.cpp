// Record-width ablation: the paper sorts 4-byte integers, where the 2002
// CPU dominates; production external sorts move 100-byte Datamation-style
// records, where the disks dominate.  This bench sorts the same *record
// count* at three widths and decomposes the simulated time into compute vs
// I/O, showing where the paper's conclusions are width-sensitive (the
// heterogeneous speedup shrinks as the job becomes I/O-bound if disks are
// NOT speed-scaled).
#include <iostream>

#include "bench/bench_common.h"
#include "core/ext_psrs.h"
#include "hetero/perf_vector.h"
#include "metrics/table.h"
#include "net/cluster.h"
#include "pdm/typed_io.h"
#include "workload/datamation.h"
#include "workload/generators.h"

namespace paladin::bench {
namespace {

using hetero::PerfVector;
using workload::DatamationLess;
using workload::DatamationRecord;

template <Record T, typename Less>
double sort_time(const BenchOptions& opt, const PerfVector& perf, u64 n,
                 bool scale_disk,
                 const std::function<void(net::NodeContext&, u64, u64)>& fill) {
  RunningStats acc;
  for (u32 rep = 0; rep < opt.reps; ++rep) {
    net::ClusterConfig config = paper_cluster(opt);
    config.cost.scale_disk_with_speed = scale_disk;
    config.seed = 800 + rep;
    net::Cluster cluster(config);
    auto outcome = cluster.run([&](net::NodeContext& ctx) -> int {
      fill(ctx, perf.share_offset(ctx.rank(), n), perf.share(ctx.rank(), n));
      core::ExtPsrsConfig psrs;
      psrs.sequential.memory_records = scaled_memory(opt) / (sizeof(T) / 4);
      psrs.sequential.allow_in_memory = false;
      psrs.message_records = 32768 / sizeof(T);
      ctx.clock().reset();
      core::ext_psrs_sort<T, Less>(ctx, perf, psrs);
      return 0;
    });
    acc.add(outcome.makespan);
  }
  return acc.mean();
}

int run(const BenchOptions& opt) {
  PerfVector perf({4, 4, 1, 1});
  const u64 n = perf.round_up_admissible(scaled_pow2(opt, 21));

  heading("Record-width ablation: 4-byte keys vs 100-byte Datamation records");
  note("same record count (" + std::to_string(n) +
       "), same cluster {4,4,1,1}; time split depends on whether the "
       "background load also slows the I/O path");

  auto fill_u32 = [&](net::NodeContext& ctx, u64 offset, u64 count) {
    workload::WorkloadSpec spec;
    spec.dist = workload::Dist::kUniform;
    spec.total_records = n;
    spec.node_count = 4;
    spec.seed = ctx.config().seed;
    workload::write_share(spec, ctx.rank(), offset, count, ctx.disk(),
                          "input");
  };
  auto fill_wide = [&](net::NodeContext& ctx, u64 offset, u64 count) {
    workload::write_datamation(ctx.disk(), "input", ctx.config().seed, offset,
                               count);
  };

  metrics::TextTable table({"record", "bytes moved", "disk scaled with load",
                            "exe time (s)"});
  for (bool scale_disk : {true, false}) {
    const double narrow =
        sort_time<DefaultKey, std::less<DefaultKey>>(opt, perf, n, scale_disk,
                                                     fill_u32);
    const double wide = sort_time<DatamationRecord, DatamationLess>(
        opt, perf, n, scale_disk, fill_wide);
    table.add_row({"u32 (4 B)",
                   metrics::TextTable::fmt(
                       static_cast<double>(n) * 4 / 1e6, 0) +
                       " MB",
                   scale_disk ? "yes" : "no", fmt_seconds(narrow)});
    table.add_row({"datamation (100 B)",
                   metrics::TextTable::fmt(
                       static_cast<double>(n) * 100 / 1e6, 0) +
                       " MB",
                   scale_disk ? "yes" : "no", fmt_seconds(wide)});
  }
  table.print(std::cout);
  note("with unscaled disks the wide-record sort converges across nodes: "
       "once I/O dominates, CPU heterogeneity matters less and the perf "
       "vector should be calibrated with the *same record width* the "
       "production sort will use — exactly why the paper calibrates with "
       "the external sort itself rather than a CPU benchmark");
  return 0;
}

}  // namespace
}  // namespace paladin::bench

int main(int argc, char** argv) {
  return paladin::bench::run(paladin::bench::BenchOptions::parse(argc, argv));
}
